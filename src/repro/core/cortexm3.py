"""Cortex-M3-like core model (paper section 3.2).

Timing properties reproduced:

* Harvard fetch/data paths, but literals still come from the single-ported
  flash and disturb its prefetch stream (section 2.2);
* single-cycle multiply, early-terminating hardware divide (section 2.1);
* NVIC hardware preamble/postamble: 8-word stacking with the vector fetch
  in parallel, 12 cycles on zero-wait memory; tail-chaining back-to-back
  interrupts in 6 cycles (section 3.2.1, figure 4);
* bit-band accesses are ordinary loads/stores to the alias region - the
  atomicity win is architectural, not a timing special case
  (section 3.2.3, figure 5).
"""

from __future__ import annotations

from repro.core.cpu import BaseCpu
from repro.core.exceptions import DataAbort, InterruptRecord
from repro.core.nvic import (
    ENTRY_STACKING_WORDS,
    PIPELINE_REFILL_CYCLES,
    TAIL_CHAIN_CYCLES,
    VECTOR_FETCH_CYCLES,
    NvicController,
)
from repro.isa.assembler import Program
from repro.isa.instructions import Instruction
from repro.isa.registers import R12, MASK32
from repro.isa.semantics import Outcome
from repro.memory.bus import SystemBus
from repro.memory.mpu import Mpu, MpuFault
from repro.sim.trace import TraceRecorder

EXC_RETURN = 0xFFFFFFF9


class CortexM3Core(BaseCpu):
    """Cortex-M3-style timing, NVIC, and exception model."""

    name = "cortex-m3"

    def __init__(self, program: Program, bus: SystemBus,
                 nvic: NvicController | None = None,
                 mpu: Mpu | None = None,
                 trace: TraceRecorder | None = None) -> None:
        super().__init__(program, trace)
        self.bus = bus
        self.nvic = nvic or NvicController()
        self.mpu = mpu
        self._record_stack: list[InterruptRecord] = []
        self._frame_stack: list[tuple[int, int]] = []  # (sp at entry, frame addr)

    @property
    def _irq_queue(self) -> list:
        return self.nvic.queue

    # ------------------------------------------------------------------
    # memory paths
    # ------------------------------------------------------------------
    _bus_fetch = True  # fetch_stalls is a plain bus delegation

    def fetch_stalls(self, addr: int, size: int) -> int:
        return self.bus.fetch_stalls(addr, size)

    def _data_inline_plan(self) -> str:
        # fused accesses stay inline with an MPU attached: the emitted
        # code consults cpu.mpu per access (read dynamically, so an MPU
        # attached after fusion is honoured) and faults bit-exactly
        return "mpu"

    def _exception_return_static(self, target: int) -> bool:
        # the hook only fires on the EXC_RETURN magic value; any other
        # constant target can be written to the PC directly
        return target != (EXC_RETURN & ~1)

    def data_read(self, addr: int, size: int) -> tuple[int, int]:
        self._mpu_check(addr, size, is_write=False)
        return self.bus.read(addr, size, side="D")

    def data_write(self, addr: int, size: int, value: int) -> int:
        self._mpu_check(addr, size, is_write=True)
        return self.bus.write(addr, size, value, side="D")

    # Collapsed load/store path (identical statistics and timing); the MPU
    # consultation stays per-access, it just skips a frame when absent.
    def read(self, addr: int, size: int) -> int:
        if self.mpu is not None:
            self._mpu_check(addr, size, is_write=False)
        value, stalls = self.bus.read(addr, size, "D")
        self._data_stalls += stalls
        return value

    def write(self, addr: int, size: int, value: int) -> None:
        if self.mpu is not None:
            self._mpu_check(addr, size, is_write=True)
        self._data_stalls += self.bus.write(addr, size, value, "D")

    def _mpu_check(self, addr: int, size: int, is_write: bool) -> None:
        if self.mpu is None:
            return
        try:
            self.mpu.check(addr, size, is_write)
        except MpuFault as fault:
            raise DataAbort(fault.address, "MPU violation") from fault

    # ------------------------------------------------------------------
    # Cortex-M3 cycle counts
    # ------------------------------------------------------------------
    #: the only dynamic cycle model is the early-exit divider:
    #: 1 + min(11, ...) = 12 core cycles worst case, +1 if it branches
    WORST_DYNAMIC_CYCLES = 13

    def instruction_cycles(self, ins: Instruction, outcome: Outcome) -> int:
        if outcome.skipped:
            return 1
        m = ins.mnemonic
        cycles = 1
        if outcome.taken:
            cycles += 1  # 3-stage pipeline reload (fetch stalls come on top)
        if m in ("LDR", "LDRB", "LDRH", "LDRSB", "LDRSH"):
            cycles += 1
        elif m in ("LDM", "POP", "STM", "PUSH"):
            cycles += outcome.regs_transferred
        elif m in ("SDIV", "UDIV"):
            # early termination: 2..12 cycles depending on result width
            cycles += min(11, 1 + (outcome.div_early_exit + 3) // 4)
        elif m in ("TBB", "TBH"):
            cycles += 2
        elif m in ("UMULL", "SMULL", "MLA", "MLS"):
            cycles += 1
        # MUL, MOVW/MOVT, bitfield ops, CLZ, RBIT: single cycle
        return cycles

    def compile_cycles(self, ins: Instruction):
        """Prebind the M3 cycle cost; only divides stay outcome-dependent."""
        m = ins.mnemonic
        if m in ("SDIV", "UDIV"):
            def div_cycles(outcome):
                if outcome.skipped:
                    return 1
                cycles = 1 + min(11, 1 + (outcome.div_early_exit + 3) // 4)
                return cycles + 1 if outcome.taken else cycles
            return div_cycles
        extra = 0
        if m in ("LDR", "LDRB", "LDRH", "LDRSB", "LDRSH"):
            extra = 1
        elif m in ("LDM", "POP", "STM", "PUSH"):
            extra = len(ins.reglist)
        elif m in ("TBB", "TBH"):
            extra = 2
        elif m in ("UMULL", "SMULL", "MLA", "MLS"):
            extra = 1
        return self._static_cycle_fn(1 + extra, 2 + extra)

    # ------------------------------------------------------------------
    # NVIC exception scheme: hardware preamble/postamble + tail-chaining
    # ------------------------------------------------------------------
    def check_interrupts(self) -> bool:
        request = self.nvic.pending_at(self.cycles, masked=not self.interrupts_enabled)
        if request is None:
            return False
        self.nvic.take(request)
        self._enter_exception(request, tail_chained=False)
        return True

    def _enter_exception(self, request, tail_chained: bool) -> None:
        self.sleeping = False
        if tail_chained:
            # skip the pop+push pair entirely
            self.cycles += TAIL_CHAIN_CYCLES
        else:
            # hardware stacking of r0-r3, r12, lr, pc, xPSR (D-side writes)
            # while the vector is fetched on the I-side in parallel
            frame = [
                self.regs.read(0), self.regs.read(1),
                self.regs.read(2), self.regs.read(3),
                self.regs.read(R12), self.regs.lr,
                self.regs.pc, self.apsr.to_word(),
            ]
            sp = (self.regs.sp - 32) & MASK32
            stalls = 0
            for index, value in enumerate(frame):
                stalls += self.data_write(sp + 4 * index, 4, value)
            self._frame_stack.append((self.regs.sp, sp))
            self.regs.sp = sp
            self.cycles += (ENTRY_STACKING_WORDS + VECTOR_FETCH_CYCLES
                            + PIPELINE_REFILL_CYCLES + stalls)
        record = InterruptRecord(number=request.number,
                                 assert_cycle=request.assert_cycle,
                                 entry_cycle=self.cycles,
                                 tail_chained=tail_chained)
        self.nvic.stats.records.append(record)
        self._record_stack.append(record)
        self.regs.lr = EXC_RETURN
        self.regs.pc = request.handler
        self.trace.emit(self.cycles, "irq", "enter", number=request.number,
                        latency=record.latency, tail_chained=tail_chained)

    def _exception_return_hook(self, target: int) -> bool:
        if target != (EXC_RETURN & ~1):
            return False
        if self._record_stack:
            record = self._record_stack.pop()
            record.exit_cycle = self.cycles
            self.trace.emit(self.cycles, "irq", "exit", number=record.number)
        successor = self.nvic.complete(self.cycles, masked=not self.interrupts_enabled)
        if successor is not None:
            self._enter_exception(successor, tail_chained=True)
            return True
        # hardware unstacking (postamble)
        if not self._frame_stack:
            self.halted = True  # return with no frame: treat as program end
            return True
        old_sp, frame_addr = self._frame_stack.pop()
        stalls = 0
        values = []
        for index in range(8):
            value, s = self.data_read(frame_addr + 4 * index, 4)
            values.append(value)
            stalls += s
        r0, r1, r2, r3, r12, lr, pc, apsr_word = values
        for reg, value in ((0, r0), (1, r1), (2, r2), (3, r3), (R12, r12)):
            self.regs.write(reg, value)
        self.regs.lr = lr
        self.regs.sp = old_sp
        from repro.isa.registers import Apsr
        self.apsr = Apsr.from_word(apsr_word)
        self.cycles += ENTRY_STACKING_WORDS + PIPELINE_REFILL_CYCLES + 1 + stalls
        self.regs.pc = pc
        return True
