"""Superblock fusion: compile a straight-line run into one code object.

The superblock engine (``BaseCpu._run_superblocks``) executes chained
micro-op closures in a list loop, which already removes the per-step dict
dispatch and interrupt poll.  This module removes the remaining
per-instruction Python *frames*: once a superblock has been dispatched
enough times to prove hot, :func:`fuse_block` generates a single function
whose body is the block's per-step statement sequences laid out inline -
fetch (through a prebound device thunk), execute, cycle accounting, PC
update - and compiles it once.  The hottest operand shapes (register
moves and ALU, compares, immediate shifts, immediate/register-offset
loads and stores, MOVW/MOVT, zero/sign extension) are inlined as raw
statements; everything else calls its already-bound step or exec closure,
so partial inlining still wins.

Bit-exactness contract
----------------------
Every emitted statement sequence is a literal transcription of the
corresponding bound-step behaviour (``BaseCpu._bind_uop_slim``) and
predecode closure body (:mod:`repro.isa.predecode`), in the same order:
fetch, predicate, execute, cycle/instruction accounting, PC write.  A
fault raised mid-block (bus fault, MPU abort) therefore leaves registers,
counters, and bus statistics in exactly the state per-step execution
would, and the property tests in ``tests/test_fastpath_properties.py``
diff complete machine state across all engines to keep it that way.

Fused blocks run only below the interrupt event horizon (the engine falls
back to the per-step list when a poll could matter), and are rebuilt
whenever the program's execution index is reassigned, alongside the
micro-op table they were generated from.
"""

from __future__ import annotations

from repro.isa.registers import MASK32, PC
from repro.isa.semantics import _LOAD_SIZES, _SIGNED_LOADS, _STORE_SIZES, Outcome
from repro.memory.bus import AccessRecord
from repro.memory.flash import Flash
from repro.memory.sram import Sram

_SIGN_BIT = 0x8000_0000

#: dispatches of a block through the list path before it is fused
FUSE_THRESHOLD = 16

_STORE_MASKS = {1: 0xFF, 2: 0xFFFF, 4: MASK32}


def _no_pc(*regs):
    return all(r is None or r != PC for r in regs)


# ----------------------------------------------------------------------
# exec-body emitters: return statement lines or None (-> closure call)
# ----------------------------------------------------------------------

def _emit_mov(ins):
    rd, rm = ins.rd, ins.rm
    if not _no_pc(rd, rm) or rd is None or ins.shift is not None:
        return None
    mvn = ins.mnemonic == "MVN"
    if rm is None:
        if ins.imm is None:
            return None
        value = ins.imm & MASK32
        if mvn:
            value = (~value) & MASK32
        lines = [f"rvals[{rd}] = {value}"]
        if ins.setflags:
            lines += ["f = cpu.apsr",
                      f"f.n = {value >= _SIGN_BIT}",
                      f"f.z = {value == 0}"]
        return lines
    src = f"rvals[{rm}]"
    if mvn:
        lines = [f"v = (~{src}) & {MASK32}"]
    else:
        lines = [f"v = {src}"]
    lines.append(f"rvals[{rd}] = v")
    if ins.setflags:
        lines += ["f = cpu.apsr",
                  f"f.n = v >= {_SIGN_BIT}",
                  "f.z = v == 0"]
    return lines


def _emit_add_sub(ins):
    op = ins.mnemonic
    rd, rn, rm = ins.rd, ins.rn, ins.rm
    if not _no_pc(rd, rn, rm) or rd is None or rn is None:
        return None
    if rm is not None and ins.shift is not None:
        return None
    if rm is None and ins.imm is None:
        return None
    y = f"rvals[{rm}]" if rm is not None else str(ins.imm & MASK32)
    sign = "+" if op == "ADD" else "-"
    if not ins.setflags:
        return [f"rvals[{rd}] = (rvals[{rn}] {sign} {y}) & {MASK32}"]
    lines = [f"x = rvals[{rn}]", f"y = {y}"]
    if op == "ADD":
        lines += [
            "u = x + y",
            f"r = u & {MASK32}",
            f"rvals[{rd}] = r",
            "f = cpu.apsr",
            f"f.n = r >= {_SIGN_BIT}",
            "f.z = r == 0",
            f"f.c = u > {MASK32}",
            f"f.v = ((~(x ^ y)) & (x ^ r) & {_SIGN_BIT}) != 0",
        ]
    else:
        lines += [
            f"u = x + (y ^ {MASK32}) + 1",
            f"r = u & {MASK32}",
            f"rvals[{rd}] = r",
            "f = cpu.apsr",
            f"f.n = r >= {_SIGN_BIT}",
            "f.z = r == 0",
            f"f.c = u > {MASK32}",
            f"f.v = ((x ^ y) & (x ^ r) & {_SIGN_BIT}) != 0",
        ]
    return lines


_LOGIC_EXPR = {
    "AND": "x & y",
    "ORR": "x | y",
    "EOR": "x ^ y",
    "BIC": "x & ~y",
    "ORN": f"x | (~y & {MASK32})",
}


def _emit_logic(ins):
    rd, rn, rm = ins.rd, ins.rn, ins.rm
    if not _no_pc(rd, rn, rm) or rd is None or rn is None:
        return None
    if rm is not None and ins.shift is not None:
        return None
    if rm is None and ins.imm is None:
        return None
    y = f"rvals[{rm}]" if rm is not None else str(ins.imm & MASK32)
    lines = [f"x = rvals[{rn}]", f"y = {y}",
             f"r = ({_LOGIC_EXPR[ins.mnemonic]}) & {MASK32}",
             f"rvals[{rd}] = r"]
    if ins.setflags:
        # no-shift logic ops leave C unchanged (shifter carry == carry in)
        lines += ["f = cpu.apsr", f"f.n = r >= {_SIGN_BIT}", "f.z = r == 0"]
    return lines


def _emit_shift(ins):
    op = ins.mnemonic
    rd, rn = ins.rd, ins.rn
    amount = ins.imm
    if (not _no_pc(rd, rn) or rd is None or rn is None or ins.rm is not None
            or amount is None or not 1 <= amount <= 31):
        return None
    lines = [f"x = rvals[{rn}]"]
    if op == "LSL":
        lines += [f"e = x << {amount}",
                  f"r = e & {MASK32}",
                  f"c = (e & {1 << 32}) != 0"]
    elif op == "LSR":
        lines += [f"r = x >> {amount}",
                  f"c = ((x >> {amount - 1}) & 1) != 0"]
    elif op == "ASR":
        lines += [f"s32 = x - {1 << 32} if x >= {_SIGN_BIT} else x",
                  f"r = (s32 >> {amount}) & {MASK32}",
                  f"c = ((x >> {amount - 1}) & 1) != 0"]
    else:  # ROR, amount 1..31
        lines += [f"r = ((x >> {amount}) | (x << {32 - amount})) & {MASK32}",
                  "c = (r >> 31) != 0"]
    lines.append(f"rvals[{rd}] = r")
    if ins.setflags:
        lines += ["f = cpu.apsr", f"f.n = r >= {_SIGN_BIT}", "f.z = r == 0",
                  "f.c = c"]
    return lines


def _emit_compare(ins):
    op = ins.mnemonic
    rn, rm = ins.rn, ins.rm
    if not _no_pc(rn, rm) or rn is None or ins.shift is not None:
        return None
    if rm is None and ins.imm is None:
        return None
    y = f"rvals[{rm}]" if rm is not None else str(ins.imm & MASK32)
    if op == "CMP":
        return [
            f"x = rvals[{rn}]", f"y = {y}",
            f"u = x + (y ^ {MASK32}) + 1",
            f"r = u & {MASK32}",
            "f = cpu.apsr",
            f"f.n = r >= {_SIGN_BIT}",
            "f.z = r == 0",
            f"f.c = u > {MASK32}",
            f"f.v = ((x ^ y) & (x ^ r) & {_SIGN_BIT}) != 0",
        ]
    if op == "CMN":
        return [
            f"x = rvals[{rn}]", f"y = {y}",
            "u = x + y",
            f"r = u & {MASK32}",
            "f = cpu.apsr",
            f"f.n = r >= {_SIGN_BIT}",
            "f.z = r == 0",
            f"f.c = u > {MASK32}",
            f"f.v = ((~(x ^ y)) & (x ^ r) & {_SIGN_BIT}) != 0",
        ]
    expr = "x & y" if op == "TST" else "x ^ y"
    return [
        f"x = rvals[{rn}]", f"y = {y}",
        f"r = {expr}",
        "f = cpu.apsr",
        f"f.n = (r & {_SIGN_BIT}) != 0",
        f"f.z = (r & {MASK32}) == 0",
    ]


def _emit_mul(ins):
    rd, rn, rm = ins.rd, ins.rn, ins.rm
    if not _no_pc(rd, rn, rm) or rd is None or rn is None or rm is None:
        return None
    lines = [f"r = (rvals[{rn}] * rvals[{rm}]) & {MASK32}", f"rvals[{rd}] = r"]
    if ins.setflags:
        lines += ["f = cpu.apsr", f"f.n = r >= {_SIGN_BIT}", "f.z = r == 0"]
    return lines


def _emit_extend(ins):
    op = ins.mnemonic
    rd = ins.rd
    src = ins.rm if ins.rm is not None else ins.rn
    if not _no_pc(rd, src) or rd is None or src is None:
        return None
    if op == "CLZ":
        return [f"rvals[{rd}] = 32 - rvals[{src}].bit_length()"]
    if op in ("UXTB", "UXTH"):
        mask = 0xFF if op == "UXTB" else 0xFFFF
        return [f"rvals[{rd}] = rvals[{src}] & {mask}"]
    bits = 8 if op == "SXTB" else 16
    mask = (1 << bits) - 1
    sign = 1 << (bits - 1)
    ext = MASK32 ^ mask
    return [f"v = rvals[{src}] & {mask}",
            f"rvals[{rd}] = (v | {ext}) if v >= {sign} else v"]


def _emit_movw_movt(ins):
    rd = ins.rd
    if rd is None or rd == PC or ins.imm is None:
        return None
    if ins.mnemonic == "MOVW":
        return [f"rvals[{rd}] = {ins.imm & 0xFFFF}"]
    high = (ins.imm & 0xFFFF) << 16
    return [f"rvals[{rd}] = {high} | (rvals[{rd}] & 0xFFFF)"]


def _emit_ubfx(ins):
    rd, rn = ins.rd, ins.rn
    lsb, width = ins.bf_lsb, ins.bf_width
    if not _no_pc(rd, rn) or rd is None or rn is None:
        return None
    if lsb is None or width is None or not 0 < width <= 32 - lsb:
        return None
    mask = ((1 << width) - 1) << lsb
    return [f"rvals[{rd}] = (rvals[{rn}] & {mask}) >> {lsb}"]


def _load_sign_lines(sign_bits):
    if sign_bits is None:
        return []
    sign = 1 << (sign_bits - 1)
    ext = MASK32 ^ ((1 << sign_bits) - 1)
    return [f"v = (v | {ext}) if v >= {sign} else v"]


def _emit_load(cpu, ins, isa, index, ns):
    mem = ins.mem
    rd = ins.rd
    if mem is None or rd is None or rd == PC or mem.writeback or mem.postindex:
        return None, None
    size = _LOAD_SIZES[ins.mnemonic]
    sign_bits = _SIGNED_LOADS.get(ins.mnemonic)
    guard = cpu._data_bus_inline_guard()
    if mem.rn == PC:
        if mem.rm is not None:
            return None, None
        pc_off = 8 if isa == "arm" else 4
        address = (((ins.address + pc_off) & ~3) + mem.offset) & MASK32
        # literal-pool load: constant address, so the device decode (and on
        # an MPU-less core the whole bus dispatch) folds at fuse time
        device = None if guard is None else cpu.bus._lookup(address)
        if (guard == "" and device is not None
                and address + size <= device.base + device.size):
            ns[f"DL{index}"] = device.read
            ns.setdefault("AR", AccessRecord)
            lines = [
                f"v, ds = DL{index}({address}, {size}, 'D')",
                "bus.reads += 1",
                "bus.total_stalls += ds",
                "if bus.record:",
                f"    bus.accesses.append(AR({address}, {size}, 'R', 'D', ds))",
            ]
            lines += _load_sign_lines(sign_bits)
            lines.append(f"rvals[{rd}] = v & {MASK32}")
            return lines, "local"
        lines = ["cpu._data_stalls = 0", f"v = RD({address}, {size})"]
        lines += _load_sign_lines(sign_bits)
        lines.append(f"rvals[{rd}] = v & {MASK32}")
        return lines, "attr"
    if mem.rm is None:
        addr_expr = f"(rvals[{mem.rn}] + {mem.offset}) & {MASK32}"
    elif mem.rm == PC:
        return None, None
    else:
        addr_expr = (f"(rvals[{mem.rn}] + ((rvals[{mem.rm}] << {mem.shift})"
                     f" & {MASK32})) & {MASK32}")
    if guard is not None:
        # transcription of SystemBus.read's span-cache hit path; a miss
        # (or an active MPU) falls back to the full cpu.read dispatch
        ns.setdefault("AR", AccessRecord)
        lines = [
            f"a = {addr_expr}",
            "sp = bus._span_d",
            f"if {guard}sp[0] <= a < sp[1]:",
            f"    v, ds = sp[2].read(a, {size}, 'D')",
            "    bus.reads += 1",
            "    bus.total_stalls += ds",
            "    if bus.record:",
            f"        bus.accesses.append(AR(a, {size}, 'R', 'D', ds))",
            "else:",
            "    cpu._data_stalls = 0",
            f"    v = RD(a, {size})",
            "    ds = cpu._data_stalls",
        ]
        lines += _load_sign_lines(sign_bits)
        lines.append(f"rvals[{rd}] = v & {MASK32}")
        return lines, "local"
    lines = ["cpu._data_stalls = 0", f"v = RD({addr_expr}, {size})"]
    lines += _load_sign_lines(sign_bits)
    lines.append(f"rvals[{rd}] = v & {MASK32}")
    return lines, "attr"


def _emit_store(cpu, ins, index, ns):
    mem = ins.mem
    rd = ins.rd
    if (mem is None or rd is None or rd == PC or mem.rn == PC
            or mem.writeback or mem.postindex):
        return None, None
    size = _STORE_SIZES[ins.mnemonic]
    vmask = _STORE_MASKS[size]
    if mem.rm is None:
        addr_expr = f"(rvals[{mem.rn}] + {mem.offset}) & {MASK32}"
    elif mem.rm == PC:
        return None, None
    else:
        addr_expr = (f"(rvals[{mem.rn}] + ((rvals[{mem.rm}] << {mem.shift})"
                     f" & {MASK32})) & {MASK32}")
    guard = cpu._data_bus_inline_guard()
    if guard is not None:
        ns.setdefault("AR", AccessRecord)
        return [
            f"a = {addr_expr}",
            "sp = bus._span_d",
            f"if {guard}sp[0] <= a < sp[1]:",
            f"    ds = sp[2].write(a, {size}, rvals[{rd}] & {vmask}, 'D')",
            "    bus.writes += 1",
            "    bus.total_stalls += ds",
            "    if bus.record:",
            f"        bus.accesses.append(AR(a, {size}, 'W', 'D', ds))",
            "else:",
            "    cpu._data_stalls = 0",
            f"    WR(a, {size}, rvals[{rd}] & {vmask})",
            "    ds = cpu._data_stalls",
        ], "local"
    return ["cpu._data_stalls = 0",
            f"WR({addr_expr}, {size}, rvals[{rd}] & {vmask})"], "attr"


_NOOP_OPS = frozenset({"NOP", "DSB", "ISB", "BKPT"})


def _emit_exec(cpu, ins, isa, index, ns):
    """Inline statements for one exec body: ``(lines, ds_mode)``.

    ``ds_mode`` tells the step emitter where the data-side stalls landed:
    ``None`` (no data access), ``"attr"`` (accumulated in
    ``cpu._data_stalls``, which the emitted lines reset first), or
    ``"local"`` (left in the local ``ds``).  ``lines`` of ``None`` means
    no inline form - the caller keeps the prebound closure, which is
    always correct.
    """
    op = ins.mnemonic
    if op in _NOOP_OPS:
        return [], None
    if op in ("MOV", "MVN"):
        return _emit_mov(ins), None
    if op in ("ADD", "SUB"):
        return _emit_add_sub(ins), None
    if op in _LOGIC_EXPR:
        return _emit_logic(ins), None
    if op in ("LSL", "LSR", "ASR", "ROR"):
        return _emit_shift(ins), None
    if op in ("CMP", "CMN", "TST", "TEQ"):
        return _emit_compare(ins), None
    if op == "MUL":
        return _emit_mul(ins), None
    if op in ("CLZ", "UXTB", "UXTH", "SXTB", "SXTH"):
        return _emit_extend(ins), None
    if op in ("MOVW", "MOVT"):
        return _emit_movw_movt(ins), None
    if op == "UBFX":
        return _emit_ubfx(ins), None
    if op in ("LDR", "LDRB", "LDRH", "LDRSB", "LDRSH"):
        return _emit_load(cpu, ins, isa, index, ns)
    if op in ("STR", "STRB", "STRH"):
        return _emit_store(cpu, ins, index, ns)
    return None, None


# ----------------------------------------------------------------------
# fetch emitters
# ----------------------------------------------------------------------

def _emit_fetch(cpu, uop, index, ns):
    """Emit the instruction-fetch sequence assigning stall cycles to ``s``.

    Returns ``(lines, static_stalls)``.  When the core fetches straight
    from the bus and the (statically known) instruction address lands in a
    plain SRAM or flash device, the whole fetch - device decode, stream
    bookkeeping, bus statistics, access record - is emitted inline, so the
    hot path pays no Python call at all (flash pays one ``_access`` call
    per line crossing only).  ``static_stalls`` is the constant stall
    count when it is statically known (SRAM), letting the caller fold it
    into the cycle cost; otherwise ``None`` and the stalls are in ``s``.

    Every inline form is a literal transcription of the corresponding
    ``SystemBus.fetch_stalls`` + device ``fetch_stalls`` pair, in order:
    device timing first, then read counter, stall total, access record.
    """
    address, size = uop.address, uop.size
    device = cpu._fetch_bus_device(address, size)
    if device is not None and type(device) is Sram:
        ws = device.wait_states
        ns[f"D{index}"] = device
        ns.setdefault("AR", AccessRecord)
        lines = [
            f"D{index}.reads += 1",
            "bus.reads += 1",
            f"bus.total_stalls += {ws}",
            "if bus.record:",
            f"    bus.accesses.append(AR({address}, {size}, 'R', 'I', {ws}))",
        ]
        return lines, ws
    if device is not None and type(device) is Flash:
        line = address & ~(device.line_bytes - 1)
        straddles = address + size > line + device.line_bytes
        ns[f"D{index}"] = device
        ns[f"DA{index}"] = device._access
        ns.setdefault("AR", AccessRecord)
        lines = [
            f"if D{index}._buffered_line == {line}:",
            f"    D{index}.sequential_hits += 1",
            "    s = 0",
            "else:",
            f"    s = DA{index}({address})",
        ]
        if straddles:
            lines.append(f"s += DA{index}({address + size - 1})")
        lines += [
            "bus.reads += 1",
            "bus.total_stalls += s",
            "if bus.record:",
            f"    bus.accesses.append(AR({address}, {size}, 'R', 'I', s))",
        ]
        return lines, None
    thunk = cpu._fetch_thunk(address, size)
    if thunk is not None:
        ns[f"F{index}"] = thunk
        return [f"s = F{index}()"], None
    ns[f"F{index}"] = cpu._fetch_port()
    return [f"s = F{index}({address}, {size})"], None


# ----------------------------------------------------------------------
# block fusion
# ----------------------------------------------------------------------

def _emit_step(cpu, uop, index, ns, isa):
    """Emit the full per-step sequence for one chainable micro-op.

    Transcribes ``_bind_uop_slim`` statement for statement: fetch,
    (predicate,) execute, cycle accounting, instruction count, PC write.
    Returns None when the micro-op has no slim form (the caller then calls
    its bound step closure).
    """
    ins = uop.ins
    cycle_fn = cpu.compile_cycles(ins)
    base = getattr(cycle_fn, "static_base", None) if cycle_fn is not None else None
    if uop.cond_check is not None and base is None:
        return None
    fetch_lines, static_stalls = _emit_fetch(cpu, uop, index, ns)
    stall_expr = "s" if static_stalls is None else str(static_stalls)
    mem = uop.kind == "mem"
    body, ds_mode = _emit_exec(cpu, ins, isa, index, ns)
    if body is None:
        ns[f"E{index}"] = uop.exec
        ns[f"O{index}"] = Outcome()
        body = [f"E{index}(cpu, O{index})"]
        ds_mode = "attr" if mem else None
        if mem:
            body.insert(0, "cpu._data_stalls = 0")
    if base is not None:
        if static_stalls is not None:
            cost = str(base + static_stalls)
        else:
            cost = f"{base} + s"
    else:
        if cycle_fn is None:
            def cycle_fn(outcome, _ins=ins, _dyn=cpu.instruction_cycles):
                return _dyn(_ins, outcome)
        ns[f"K{index}"] = cycle_fn
        if f"O{index}" not in ns:
            ns[f"O{index}"] = Outcome()
        cost = f"K{index}(O{index}) + {stall_expr}"
    if ds_mode == "attr":
        cost += " + cpu._data_stalls"
    elif ds_mode == "local":
        cost += " + ds"
    lines = list(fetch_lines)
    if uop.cond_check is None:
        lines += body
        lines.append(f"cpu.cycles += {cost}")
    else:
        ns[f"C{index}"] = uop.cond_check
        lines.append(f"if C{index}(cpu.apsr):")
        lines += ["    " + b for b in body]
        lines.append(f"    cpu.cycles += {cost}")
        lines.append("else:")
        skipped_cost = "1 + s" if static_stalls is None else str(1 + static_stalls)
        lines.append(f"    cpu.cycles += {skipped_cost}")
        lines.append("    cpu.instructions_skipped += 1")
    lines.append("cpu.instructions_executed += 1")
    lines.append(f"rvals[15] = {uop.next_pc}")
    return lines


def _emit_branch_ender(cpu, uop, index, ns):
    """Inline a superblock's terminating branch, or None for closure call.

    Covers exactly the shapes ``_compile_branch`` specialises (resolved
    targets, register BX/BLX not via the PC), transcribing the general
    bound step's bookkeeping around them: a taken branch counts in
    ``branches_taken`` and skips the PC advance; a condition-failed branch
    costs 1 cycle, counts as skipped, and falls through.  The
    ``cpu.branch`` call is kept - halt detection and the cores' exception-
    return hooks live there.
    """
    ins = uop.ins
    op = ins.mnemonic
    if op not in ("B", "BL", "BX", "BLX"):
        return None
    cycle_fn = cpu.compile_cycles(ins)
    base = getattr(cycle_fn, "static_base", None) if cycle_fn is not None else None
    taken = getattr(cycle_fn, "static_taken", None) if cycle_fn is not None else None
    if base is None or taken is None:
        return None
    taken_lines = []
    if op in ("BX", "BLX") and ins.rm is not None:
        if ins.rm == PC:
            return None
        if op == "BLX":
            # read the target before writing LR: `blx lr` must branch to
            # the OLD link register (same order as _compile_branch)
            taken_lines.append(f"t = rvals[{ins.rm}]")
            taken_lines.append(f"rvals[14] = {(ins.address + ins.size) & MASK32}")
            taken_lines.append("BR(t & ~1)")
        else:
            taken_lines.append(f"BR(rvals[{ins.rm}] & ~1)")
    elif ins.target is not None:
        if op == "BL":
            taken_lines.append(f"rvals[14] = {(ins.address + ins.size) & MASK32}")
        elif op != "B":
            return None  # BX/BLX without rm: fallback handler raises
        taken_lines.append(f"BR({ins.target})")
    else:
        return None  # unresolved label: generic path raises
    ns.setdefault("BR", cpu.branch)
    fetch_lines, static_stalls = _emit_fetch(cpu, uop, index, ns)
    if static_stalls is not None:
        taken_cost = str(taken + static_stalls)
        skip_cost = str(1 + static_stalls)
    else:
        taken_cost = f"{taken} + s"
        skip_cost = "1 + s"
    lines = list(fetch_lines)
    if uop.cond_check is None:
        lines += taken_lines
        lines.append("cpu.branches_taken += 1")
        lines.append(f"cpu.cycles += {taken_cost}")
        lines.append("cpu.instructions_executed += 1")
        return lines
    ns[f"C{index}"] = uop.cond_check
    lines.append(f"if C{index}(cpu.apsr):")
    lines += ["    " + t for t in taken_lines]
    lines.append("    cpu.branches_taken += 1")
    lines.append(f"    cpu.cycles += {taken_cost}")
    lines.append("else:")
    lines.append(f"    cpu.cycles += {skip_cost}")
    lines.append("    cpu.instructions_skipped += 1")
    lines.append(f"    rvals[15] = {uop.next_pc}")
    lines.append("cpu.instructions_executed += 1")
    return lines


def fuse_block(cpu, uops, steps):
    """Compile one superblock into a single callable.

    ``uops`` are the block's micro-ops and ``steps`` the matching bound
    step closures (the list the engine executes pre-fusion); positions
    that cannot be inlined fall back to calling their bound step, so the
    fused function is behaviourally the list loop with the frames removed.
    """
    ns = {
        "cpu": cpu,
        "rvals": cpu.regs.values,
        "RD": cpu.read,
        "WR": cpu.write,
    }
    if getattr(cpu, "bus", None) is not None:
        ns["bus"] = cpu.bus
    lines = []
    for index, (uop, fast_step) in enumerate(zip(uops, steps)):
        if uop.chainable:
            emitted = _emit_step(cpu, uop, index, ns, cpu.program.isa)
        else:
            emitted = _emit_branch_ender(cpu, uop, index, ns)
        if emitted is None:
            ns[f"S{index}"] = fast_step
            lines.append(f"S{index}()")
        else:
            lines.extend(emitted)
    # every bound object becomes a default parameter, so the generated
    # body resolves them as locals (LOAD_FAST) instead of dict lookups
    params = ", ".join(f"{name}={name}" for name in ns)
    body = "\n    ".join(lines) if lines else "pass"
    source = f"def _fused({params}):\n    {body}\n"
    code = _CODE_CACHE.get(source)
    if code is None:
        if len(_CODE_CACHE) >= _CODE_CACHE_MAX:
            _CODE_CACHE.clear()  # crude bound; refilling is cheap
        code = compile(source, f"<superblock@{uops[0].address:#x}>", "exec")
        _CODE_CACHE[source] = code
    scope = dict(ns)
    exec(code, scope)
    return scope["_fused"]


#: compiled code objects memoised by generated source: campaign runs build
#: thousands of short-lived machines over identical programs and machine
#: configs, and ``compile()`` dwarfs a cold block's execution time.  The
#: bound objects differ per machine, so only the *code* is shared; binding
#: happens in the (cheap) ``exec`` of the cached code object.
_CODE_CACHE: dict[str, object] = {}
_CODE_CACHE_MAX = 4096
