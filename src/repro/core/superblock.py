"""Superblock fusion: compile a straight-line run into one code object.

The superblock engine (``BaseCpu._run_superblocks``) executes chained
micro-op closures in a list loop, which already removes the per-step dict
dispatch and interrupt poll.  This module removes the remaining
per-instruction Python *frames*: once a superblock has been dispatched
enough times to prove hot, :func:`fuse_block` generates a single function
whose body is the block's per-step statement sequences laid out inline -
fetch (through a prebound device thunk, inline SRAM/flash timing, or an
inline transcription of a cached fetch), execute, cycle accounting, PC
update - and compiles it once.  The hottest operand shapes (register
moves and ALU, compares, immediate shifts, immediate/register-offset
loads and stores, MOVW/MOVT, zero/sign extension) are inlined as raw
statements; everything else calls its already-bound step or exec closure,
so partial inlining still wins.

**Trace superblocks** (``cpu.trace_superblocks``, the default engine) go
one step further: a block terminated by a predictable taken branch - a
loop *back-edge* whose target is the block's own head - does not end
fusion at the branch.  The generated function wraps the body in a loop
whose taken path revalidates the branch condition inline and re-enters
the body directly, so a whole loop iteration is one code object executed
N times under the interrupt event horizon; the guard falls back to the
engine (bit-exactly, at an instruction boundary) on loop exit, on any
queued interrupt, and at the instruction budget
(:func:`_emit_loop_backedge`).  Conditional execution inside fused code
costs no closure call either - condition checks are emitted as flag
expressions (``_COND_EXPRS``).

Bit-exactness contract
----------------------
Every emitted statement sequence is a literal transcription of the
corresponding bound-step behaviour (``BaseCpu._bind_uop_slim``) and
predecode closure body (:mod:`repro.isa.predecode`), in the same order:
fetch, predicate, execute, cycle/instruction accounting, PC write.  A
fault raised mid-block (bus fault, MPU abort) therefore leaves registers,
counters, and bus statistics in exactly the state per-step execution
would, and the property tests in ``tests/test_fastpath_properties.py``
diff complete machine state across all engines to keep it that way.

Fused blocks run only below the interrupt event horizon (the engine falls
back to the per-step list when a poll could matter), and are rebuilt
whenever the program's execution index is reassigned, alongside the
micro-op table they were generated from.
"""

from __future__ import annotations

from time import perf_counter as _perf_counter

from repro import obs
from repro.isa.registers import MASK32, PC
from repro.isa.semantics import _LOAD_SIZES, _SIGNED_LOADS, _STORE_SIZES, Outcome
from repro.memory.bus import AccessRecord
from repro.memory.flash import Flash
from repro.memory.sram import Sram

_SIGN_BIT = 0x8000_0000

#: dispatches of a block through the list path before it is fused
FUSE_THRESHOLD = 16

_STORE_MASKS = {1: 0xFF, 2: 0xFFFF, 4: MASK32}

#: per-condition source fragments over ``f = cpu.apsr`` - literal
#: transcriptions of ``repro.isa.predecode.COND_CHECKS`` (the exhaustive
#: agreement test in tests/test_fastpath_properties.py covers the
#: predicates these transcribe), so fused code pays no closure call per
#: predicated instruction or branch
_COND_EXPRS = {
    "EQ": "f.z",
    "NE": "not f.z",
    "CS": "f.c",
    "CC": "not f.c",
    "MI": "f.n",
    "PL": "not f.n",
    "VS": "f.v",
    "VC": "not f.v",
    "HI": "f.c and not f.z",
    "LS": "not (f.c and not f.z)",
    "GE": "f.n == f.v",
    "LT": "f.n != f.v",
    "GT": "not f.z and f.n == f.v",
    "LE": "f.z or f.n != f.v",
}


def _cond_test(ins) -> str:
    """``["f = cpu.apsr", "if <expr>:"]``-ready test for a conditional."""
    return _COND_EXPRS[ins.cond.name]


def _no_pc(*regs):
    return all(r is None or r != PC for r in regs)


def _shift_operand_lines(ins, value_var: str, carry_var: str | None):
    """Statements computing the shifted second operand into ``value_var``
    and the shifter carry (a bool) into ``carry_var``, or ``None``.

    A literal transcription of ``shift_c`` for a constant amount in
    1..31 (amount 0 is the no-shift path and 32 keeps the closure), with
    the register value pre-masked as all ``rvals`` entries are.  A
    ``carry_var`` of ``None`` skips the carry computation (consumers that
    discard the shifter carry, like the adder-flagged ADD/SUB).
    """
    kind, amount = ins.shift.kind, ins.shift.amount
    if not 1 <= amount <= 31 or ins.rm is None or ins.rm == PC:
        return None
    x = f"rvals[{ins.rm}]"
    if kind == "LSL":
        if carry_var is None:
            return [f"{value_var} = ({x} << {amount}) & {MASK32}"]
        return [f"e = {x} << {amount}",
                f"{value_var} = e & {MASK32}",
                f"{carry_var} = (e & {1 << 32}) != 0"]
    if kind == "LSR":
        lines = [f"{value_var} = {x} >> {amount}"]
        if carry_var is not None:
            lines.append(f"{carry_var} = (({x} >> {amount - 1}) & 1) != 0")
        return lines
    if kind == "ASR":
        lines = [f"s32 = {x} - {1 << 32} if {x} >= {_SIGN_BIT} else {x}",
                 f"{value_var} = (s32 >> {amount}) & {MASK32}"]
        if carry_var is not None:
            lines.append(f"{carry_var} = (({x} >> {amount - 1}) & 1) != 0")
        return lines
    # ROR, amount 1..31
    lines = [f"{value_var} = (({x} >> {amount}) | ({x} << {32 - amount}))"
             f" & {MASK32}"]
    if carry_var is not None:
        lines.append(f"{carry_var} = ({value_var} >> 31) != 0")
    return lines


# ----------------------------------------------------------------------
# exec-body emitters: return statement lines or None (-> closure call)
# ----------------------------------------------------------------------

def _emit_mov(ins):
    rd, rm = ins.rd, ins.rm
    if not _no_pc(rd, rm) or rd is None:
        return None
    mvn = ins.mnemonic == "MVN"
    if ins.shift is not None:
        shift = _shift_operand_lines(ins, "v", "c" if ins.setflags else None)
        if shift is None:
            return None
        lines = list(shift)
        if mvn:
            lines.append(f"v = (~v) & {MASK32}")
        lines.append(f"rvals[{rd}] = v")
        if ins.setflags:
            lines += ["f = cpu.apsr",
                      f"f.n = v >= {_SIGN_BIT}",
                      "f.z = v == 0",
                      "f.c = c"]
        return lines
    if rm is None:
        if ins.imm is None:
            return None
        value = ins.imm & MASK32
        if mvn:
            value = (~value) & MASK32
        lines = [f"rvals[{rd}] = {value}"]
        if ins.setflags:
            lines += ["f = cpu.apsr",
                      f"f.n = {value >= _SIGN_BIT}",
                      f"f.z = {value == 0}"]
        return lines
    src = f"rvals[{rm}]"
    if mvn:
        lines = [f"v = (~{src}) & {MASK32}"]
    else:
        lines = [f"v = {src}"]
    lines.append(f"rvals[{rd}] = v")
    if ins.setflags:
        lines += ["f = cpu.apsr",
                  f"f.n = v >= {_SIGN_BIT}",
                  "f.z = v == 0"]
    return lines


def _emit_add_sub(ins):
    op = ins.mnemonic
    rd, rn, rm = ins.rd, ins.rn, ins.rm
    if not _no_pc(rd, rn, rm) or rd is None or rn is None:
        return None
    shift_lines = None
    if rm is not None and ins.shift is not None:
        # the shifter carry is discarded: ADD/SUB flags come from the adder
        shift_lines = _shift_operand_lines(ins, "y", None)
        if shift_lines is None:
            return None
    if rm is None and ins.imm is None:
        return None
    sign = "+" if op == "ADD" else "-"
    if shift_lines is not None:
        if not ins.setflags:
            return shift_lines + [
                f"rvals[{rd}] = (rvals[{rn}] {sign} y) & {MASK32}"]
        lines = shift_lines + [f"x = rvals[{rn}]"]
    else:
        y = f"rvals[{rm}]" if rm is not None else str(ins.imm & MASK32)
        if not ins.setflags:
            return [f"rvals[{rd}] = (rvals[{rn}] {sign} {y}) & {MASK32}"]
        lines = [f"x = rvals[{rn}]", f"y = {y}"]
    if op == "ADD":
        lines += [
            "u = x + y",
            f"r = u & {MASK32}",
            f"rvals[{rd}] = r",
            "f = cpu.apsr",
            f"f.n = r >= {_SIGN_BIT}",
            "f.z = r == 0",
            f"f.c = u > {MASK32}",
            f"f.v = ((~(x ^ y)) & (x ^ r) & {_SIGN_BIT}) != 0",
        ]
    else:
        lines += [
            f"u = x + (y ^ {MASK32}) + 1",
            f"r = u & {MASK32}",
            f"rvals[{rd}] = r",
            "f = cpu.apsr",
            f"f.n = r >= {_SIGN_BIT}",
            "f.z = r == 0",
            f"f.c = u > {MASK32}",
            f"f.v = ((x ^ y) & (x ^ r) & {_SIGN_BIT}) != 0",
        ]
    return lines


_LOGIC_EXPR = {
    "AND": "x & y",
    "ORR": "x | y",
    "EOR": "x ^ y",
    "BIC": "x & ~y",
    "ORN": f"x | (~y & {MASK32})",
}


def _emit_logic(ins):
    rd, rn, rm = ins.rd, ins.rn, ins.rm
    if not _no_pc(rd, rn, rm) or rd is None or rn is None:
        return None
    if rm is not None and ins.shift is not None:
        # shifted operand: flag-setting forms take C from the shifter
        shift = _shift_operand_lines(ins, "y", "c" if ins.setflags else None)
        if shift is None:
            return None
        lines = shift + [f"x = rvals[{rn}]",
                         f"r = ({_LOGIC_EXPR[ins.mnemonic]}) & {MASK32}",
                         f"rvals[{rd}] = r"]
        if ins.setflags:
            lines += ["f = cpu.apsr", f"f.n = r >= {_SIGN_BIT}",
                      "f.z = r == 0", "f.c = c"]
        return lines
    if rm is None and ins.imm is None:
        return None
    y = f"rvals[{rm}]" if rm is not None else str(ins.imm & MASK32)
    lines = [f"x = rvals[{rn}]", f"y = {y}",
             f"r = ({_LOGIC_EXPR[ins.mnemonic]}) & {MASK32}",
             f"rvals[{rd}] = r"]
    if ins.setflags:
        # no-shift logic ops leave C unchanged (shifter carry == carry in)
        lines += ["f = cpu.apsr", f"f.n = r >= {_SIGN_BIT}", "f.z = r == 0"]
    return lines


def _emit_shift(ins):
    op = ins.mnemonic
    rd, rn = ins.rd, ins.rn
    amount = ins.imm
    if (not _no_pc(rd, rn) or rd is None or rn is None or ins.rm is not None
            or amount is None or not 1 <= amount <= 31):
        return None
    lines = [f"x = rvals[{rn}]"]
    if op == "LSL":
        lines += [f"e = x << {amount}",
                  f"r = e & {MASK32}",
                  f"c = (e & {1 << 32}) != 0"]
    elif op == "LSR":
        lines += [f"r = x >> {amount}",
                  f"c = ((x >> {amount - 1}) & 1) != 0"]
    elif op == "ASR":
        lines += [f"s32 = x - {1 << 32} if x >= {_SIGN_BIT} else x",
                  f"r = (s32 >> {amount}) & {MASK32}",
                  f"c = ((x >> {amount - 1}) & 1) != 0"]
    else:  # ROR, amount 1..31
        lines += [f"r = ((x >> {amount}) | (x << {32 - amount})) & {MASK32}",
                  "c = (r >> 31) != 0"]
    lines.append(f"rvals[{rd}] = r")
    if ins.setflags:
        lines += ["f = cpu.apsr", f"f.n = r >= {_SIGN_BIT}", "f.z = r == 0",
                  "f.c = c"]
    return lines


def _emit_compare(ins):
    op = ins.mnemonic
    rn, rm = ins.rn, ins.rm
    if not _no_pc(rn, rm) or rn is None or ins.shift is not None:
        return None
    if rm is None and ins.imm is None:
        return None
    y = f"rvals[{rm}]" if rm is not None else str(ins.imm & MASK32)
    if op == "CMP":
        return [
            f"x = rvals[{rn}]", f"y = {y}",
            f"u = x + (y ^ {MASK32}) + 1",
            f"r = u & {MASK32}",
            "f = cpu.apsr",
            f"f.n = r >= {_SIGN_BIT}",
            "f.z = r == 0",
            f"f.c = u > {MASK32}",
            f"f.v = ((x ^ y) & (x ^ r) & {_SIGN_BIT}) != 0",
        ]
    if op == "CMN":
        return [
            f"x = rvals[{rn}]", f"y = {y}",
            "u = x + y",
            f"r = u & {MASK32}",
            "f = cpu.apsr",
            f"f.n = r >= {_SIGN_BIT}",
            "f.z = r == 0",
            f"f.c = u > {MASK32}",
            f"f.v = ((~(x ^ y)) & (x ^ r) & {_SIGN_BIT}) != 0",
        ]
    expr = "x & y" if op == "TST" else "x ^ y"
    return [
        f"x = rvals[{rn}]", f"y = {y}",
        f"r = {expr}",
        "f = cpu.apsr",
        f"f.n = (r & {_SIGN_BIT}) != 0",
        f"f.z = (r & {MASK32}) == 0",
    ]


def _emit_mul(ins):
    rd, rn, rm = ins.rd, ins.rn, ins.rm
    if not _no_pc(rd, rn, rm) or rd is None or rn is None or rm is None:
        return None
    lines = [f"r = (rvals[{rn}] * rvals[{rm}]) & {MASK32}", f"rvals[{rd}] = r"]
    if ins.setflags:
        lines += ["f = cpu.apsr", f"f.n = r >= {_SIGN_BIT}", "f.z = r == 0"]
    return lines


def _emit_extend(ins):
    op = ins.mnemonic
    rd = ins.rd
    src = ins.rm if ins.rm is not None else ins.rn
    if not _no_pc(rd, src) or rd is None or src is None:
        return None
    if op == "CLZ":
        return [f"rvals[{rd}] = 32 - rvals[{src}].bit_length()"]
    if op in ("UXTB", "UXTH"):
        mask = 0xFF if op == "UXTB" else 0xFFFF
        return [f"rvals[{rd}] = rvals[{src}] & {mask}"]
    bits = 8 if op == "SXTB" else 16
    mask = (1 << bits) - 1
    sign = 1 << (bits - 1)
    ext = MASK32 ^ mask
    return [f"v = rvals[{src}] & {mask}",
            f"rvals[{rd}] = (v | {ext}) if v >= {sign} else v"]


def _emit_movw_movt(ins):
    rd = ins.rd
    if rd is None or rd == PC or ins.imm is None:
        return None
    if ins.mnemonic == "MOVW":
        return [f"rvals[{rd}] = {ins.imm & 0xFFFF}"]
    high = (ins.imm & 0xFFFF) << 16
    return [f"rvals[{rd}] = {high} | (rvals[{rd}] & 0xFFFF)"]


def _emit_ubfx(ins):
    rd, rn = ins.rd, ins.rn
    lsb, width = ins.bf_lsb, ins.bf_width
    if not _no_pc(rd, rn) or rd is None or rn is None:
        return None
    if lsb is None or width is None or not 0 < width <= 32 - lsb:
        return None
    mask = ((1 << width) - 1) << lsb
    return [f"rvals[{rd}] = (rvals[{rn}] & {mask}) >> {lsb}"]


def _load_sign_lines(sign_bits):
    if sign_bits is None:
        return []
    sign = 1 << (sign_bits - 1)
    ext = MASK32 ^ ((1 << sign_bits) - 1)
    return [f"v = (v | {ext}) if v >= {sign} else v"]


def _active_plan(cpu) -> str | None:
    """The data-inline plan for the engine tier being fused.

    The plain superblock tier (``trace_superblocks`` off, the PR 2
    engine) only ever inlined the *unchecked* bus fast path; the
    ``"mpu"`` plan - inline access with a per-access protection check -
    belongs to the trace tier, so fusing with the flag off falls back to
    the mediated ``cpu.read``/``cpu.write`` calls exactly as before.
    """
    plan = cpu._data_inline_plan()
    if plan == "mpu" and not cpu.trace_superblocks:
        return None
    return plan


def _mpu_preamble(cpu, ns, addr_expr: str, size: int, is_write: bool) -> list:
    """The per-access MPU consultation of an ``"mpu"`` inline plan.

    ``cpu.mpu`` is read dynamically (an MPU attached after fusion is
    honoured); the bound ``cpu._mpu_check`` raises the same
    :class:`~repro.core.exceptions.DataAbort` mid-block that the
    ``cpu.read``/``cpu.write`` path would, with identical partial state
    and an identical ``mpu.faults`` count.
    """
    ns.setdefault("MC", cpu._mpu_check)
    return [
        "m = cpu.mpu",
        "if m is not None:",
        f"    MC({addr_expr}, {size}, {is_write})",
    ]


def _emit_load(cpu, ins, isa, index, ns, ftrack):
    mem = ins.mem
    rd = ins.rd
    if mem is None or rd is None or rd == PC or mem.writeback or mem.postindex:
        return None, None
    size = _LOAD_SIZES[ins.mnemonic]
    sign_bits = _SIGNED_LOADS.get(ins.mnemonic)
    plan = _active_plan(cpu)
    if mem.rn == PC:
        if mem.rm is not None:
            return None, None
        pc_off = 8 if isa == "arm" else 4
        address = (((ins.address + pc_off) & ~3) + mem.offset) & MASK32
        # literal-pool load: constant address, so the device decode (and
        # the whole bus dispatch) folds at fuse time; an "mpu" plan keeps
        # the per-access protection check in front of the folded access.
        # Plain SRAM and flash devices fold further - the device *read*
        # itself is transcribed (bounds proven at fuse time), so the hot
        # literal fetch pays no Python call at all (flash pays its
        # ``_access`` stream-state call, which is the timing model).
        device = None if plan is None else cpu.bus._lookup(address)
        if (plan is not None and device is not None
                and address + size <= device.base + device.size):
            ns.setdefault("AR", AccessRecord)
            lines = []
            if plan == "mpu":
                lines += _mpu_preamble(cpu, ns, str(address), size, False)
            offset = address - device.base
            if type(device) is Sram:
                ns[f"DV{index}"] = device
                ns.setdefault("IFB", int.from_bytes)
                lines += [
                    f"DV{index}.reads += 1",
                    f"v = IFB(DV{index}.data[{offset}:{offset + size}], 'little')",
                    f"ds = {device.wait_states}",
                ]
            elif type(device) is Flash:
                dev = f"DV{index}"
                ns[dev] = device
                ns[f"DA{index}"] = device._access
                ns.setdefault("IFB", int.from_bytes)
                # Flash.read opens with the same _access sequence a fetch
                # does (a literal load breaks the instruction stream -
                # that is the timing model), so the fetch forms serve here
                static = _flash_static_parts(device, dev, address, size,
                                             ftrack)
                if static is not None:
                    stmts, counters, stalls = static
                    lines += stmts
                    lines += [f"{name}.{attr} += 1"
                              for name, attr in counters]
                    lines.append(f"ds = {stalls}")
                else:
                    _flash_track_dynamic(device, address, size, ftrack)
                    lines += _flash_fetch_lines(device, dev, f"DA{index}",
                                                address, size, "ds",
                                                inline_access=True)
                lines.append(
                    f"v = IFB(DV{index}.data[{offset}:{offset + size}], 'little')")
            else:
                ns[f"DL{index}"] = device.read
                lines.append(f"v, ds = DL{index}({address}, {size}, 'D')")
            lines += [
                "bus.reads += 1",
                "bus.total_stalls += ds",
                "if bus.record:",
                f"    bus.accesses.append(AR({address}, {size}, 'R', 'D', ds))",
            ]
            lines += _load_sign_lines(sign_bits)
            lines.append(f"rvals[{rd}] = v & {MASK32}")
            return lines, "local"
        ftrack.clear()  # mediated literal read may reach a flash device
        lines = ["cpu._data_stalls = 0", f"v = RD({address}, {size})"]
        lines += _load_sign_lines(sign_bits)
        lines.append(f"rvals[{rd}] = v & {MASK32}")
        return lines, "attr"
    if mem.rm is None:
        addr_expr = f"(rvals[{mem.rn}] + {mem.offset}) & {MASK32}"
    elif mem.rm == PC:
        return None, None
    else:
        addr_expr = (f"(rvals[{mem.rn}] + ((rvals[{mem.rm}] << {mem.shift})"
                     f" & {MASK32})) & {MASK32}")
    ftrack.clear()  # runtime-addressed access: may land on a flash device
    if plan is not None:
        # transcription of SystemBus.read's span-cache hit path, with the
        # SRAM device read itself inlined behind a type test (the span
        # guarantees the bounds, so the inline arm cannot fault); a span
        # miss - or an access overrunning the span's device - falls back
        # to the full cpu.read dispatch, which re-checks the MPU (a pure
        # re-pass, since a denied access raised in MC above) and raises
        # the same faults the reference path would
        ns.setdefault("AR", AccessRecord)
        ns.setdefault("SRT", Sram)
        ns.setdefault("IFB", int.from_bytes)
        lines = [f"a = {addr_expr}"]
        if plan == "mpu":
            lines += _mpu_preamble(cpu, ns, "a", size, False)
        lines += [
            "sp = bus._span_d",
            f"if sp[0] <= a and a + {size} <= sp[1]:",
            "    d = sp[2]",
            "    if type(d) is SRT:",
            "        d.reads += 1",
            "        o = a - d.base",
            f"        v = IFB(d.data[o:o + {size}], 'little')",
            "        ds = d.wait_states",
            "    else:",
            f"        v, ds = d.read(a, {size}, 'D')",
            "    bus.reads += 1",
            "    bus.total_stalls += ds",
            "    if bus.record:",
            f"        bus.accesses.append(AR(a, {size}, 'R', 'D', ds))",
            "else:",
            "    cpu._data_stalls = 0",
            f"    v = RD(a, {size})",
            "    ds = cpu._data_stalls",
        ]
        lines += _load_sign_lines(sign_bits)
        lines.append(f"rvals[{rd}] = v & {MASK32}")
        return lines, "local"
    lines = ["cpu._data_stalls = 0", f"v = RD({addr_expr}, {size})"]
    lines += _load_sign_lines(sign_bits)
    lines.append(f"rvals[{rd}] = v & {MASK32}")
    return lines, "attr"


def _emit_store(cpu, ins, index, ns, ftrack):
    mem = ins.mem
    rd = ins.rd
    if (mem is None or rd is None or rd == PC or mem.rn == PC
            or mem.writeback or mem.postindex):
        return None, None
    size = _STORE_SIZES[ins.mnemonic]
    vmask = _STORE_MASKS[size]
    if mem.rm is None:
        addr_expr = f"(rvals[{mem.rn}] + {mem.offset}) & {MASK32}"
    elif mem.rm == PC:
        return None, None
    else:
        addr_expr = (f"(rvals[{mem.rn}] + ((rvals[{mem.rm}] << {mem.shift})"
                     f" & {MASK32})) & {MASK32}")
    ftrack.clear()  # runtime-addressed access: may land on a flash device
    plan = _active_plan(cpu)
    if plan is not None:
        ns.setdefault("AR", AccessRecord)
        ns.setdefault("SRT", Sram)
        lines = [f"a = {addr_expr}"]
        if plan == "mpu":
            lines += _mpu_preamble(cpu, ns, "a", size, True)
        lines += [
            "sp = bus._span_d",
            f"if sp[0] <= a and a + {size} <= sp[1]:",
            "    d = sp[2]",
            "    if type(d) is SRT:",
            "        d.writes += 1",
            "        o = a - d.base",
            f"        d.data[o:o + {size}] = (rvals[{rd}] & {vmask})"
            f".to_bytes({size}, 'little')",
            "        ds = d.wait_states",
            "    else:",
            f"        ds = d.write(a, {size}, rvals[{rd}] & {vmask}, 'D')",
            "    bus.writes += 1",
            "    bus.total_stalls += ds",
            "    if bus.record:",
            f"        bus.accesses.append(AR(a, {size}, 'W', 'D', ds))",
            "else:",
            "    cpu._data_stalls = 0",
            f"    WR(a, {size}, rvals[{rd}] & {vmask})",
            "    ds = cpu._data_stalls",
        ]
        return lines, "local"
    return ["cpu._data_stalls = 0",
            f"WR({addr_expr}, {size}, rvals[{rd}] & {vmask})"], "attr"


_NOOP_OPS = frozenset({"NOP", "DSB", "ISB", "BKPT"})


def _emit_exec(cpu, ins, isa, index, ns, ftrack):
    """Inline statements for one exec body: ``(lines, ds_mode)``.

    ``ds_mode`` tells the step emitter where the data-side stalls landed:
    ``None`` (no data access), ``"attr"`` (accumulated in
    ``cpu._data_stalls``, which the emitted lines reset first), or
    ``"local"`` (left in the local ``ds``).  ``lines`` of ``None`` means
    no inline form - the caller keeps the prebound closure, which is
    always correct.
    """
    op = ins.mnemonic
    if op in _NOOP_OPS:
        return [], None
    if op in ("MOV", "MVN"):
        return _emit_mov(ins), None
    if op in ("ADD", "SUB"):
        return _emit_add_sub(ins), None
    if op in _LOGIC_EXPR:
        return _emit_logic(ins), None
    if op in ("LSL", "LSR", "ASR", "ROR"):
        return _emit_shift(ins), None
    if op in ("CMP", "CMN", "TST", "TEQ"):
        return _emit_compare(ins), None
    if op == "MUL":
        return _emit_mul(ins), None
    if op in ("CLZ", "UXTB", "UXTH", "SXTB", "SXTH"):
        return _emit_extend(ins), None
    if op in ("MOVW", "MOVT"):
        return _emit_movw_movt(ins), None
    if op == "UBFX":
        return _emit_ubfx(ins), None
    if op in ("LDR", "LDRB", "LDRH", "LDRSB", "LDRSH"):
        return _emit_load(cpu, ins, isa, index, ns, ftrack)
    if op in ("STR", "STRB", "STRH"):
        return _emit_store(cpu, ins, index, ns, ftrack)
    return None, None


# ----------------------------------------------------------------------
# fetch emitters
# ----------------------------------------------------------------------

def _flash_static_parts(device, dev, address, size, ftrack):
    """Statically resolved flash access at ``address``, or ``None``.

    ``ftrack`` maps a flash device to its stream state as known at this
    point of the fused code: ``(buffered_line, streaming)`` with
    ``streaming`` of ``None`` when unknown.  Every fused access leaves the
    stream in a statically known line, so after the first (dynamic) fetch
    the whole rest of the trace resolves each access to exactly one
    ``Flash._access`` arm at fuse time: a same-line hit, a sequential
    stream advance, or a stream break - each a couple of state updates
    plus counter increments with a *constant* stall count.  Returns
    ``(state_stmts, counters, const_stalls)`` where ``counters`` are
    ``(name, attr)`` unit increments the caller may defer; updates
    ``ftrack``.  Accesses straddling a line, or with unknown prior state,
    return ``None`` (the dynamic form then re-establishes the state).
    """
    line = address & ~(device.line_bytes - 1)
    if address + size > line + device.line_bytes:
        return None
    state = ftrack.get(id(device))
    if state is None:
        return None
    known_line, streaming = state
    if known_line == line:
        # hit arm: counters only, stream state untouched
        return [], [(dev, "sequential_hits")], 0
    if known_line + device.line_bytes == line:
        if streaming is not True:
            return None  # adjacent line, unknown streaming: stay dynamic
        ftrack[id(device)] = (line, True)
        stmts = [f"{dev}._buffered_line = {line}"]
        counters = [(dev, "array_accesses")]
        if device.prefetch:
            counters.append((dev, "sequential_hits"))
            return stmts, counters, 0
        return stmts, counters, device.access_cycles
    # non-sequential: statically a stream break (buffered is known set)
    ftrack[id(device)] = (line, True)
    stmts = [f"{dev}._buffered_line = {line}",
             f"{dev}._streaming = True"]
    return (stmts, [(dev, "stream_breaks"), (dev, "array_accesses")],
            device.access_cycles)


def _flash_track_dynamic(device, address, size, ftrack) -> None:
    """Record the stream state a dynamic access at ``address`` leaves."""
    line = address & ~(device.line_bytes - 1)
    if address + size > line + device.line_bytes:
        # the straddle's second _access deterministically misses into the
        # next line, leaving the stream established there
        ftrack[id(device)] = (line + device.line_bytes, True)
    else:
        # hit arm leaves prior streaming state, miss arms set it: unknown
        ftrack[id(device)] = (line, None)


def _flash_fetch_lines(device, dev, da, address, size, stall_var,
                       inline_access: bool) -> list[str]:
    """The flash instruction-fetch sequence leaving stalls in ``stall_var``.

    The buffered-line hit test is always inline (PR 2 form).  With
    ``inline_access`` (the trace tier) the miss arm additionally
    transcribes ``Flash._access`` statement for statement - stream-state
    reads stay dynamic, the geometry (line address, line width, array
    latency, prefetch mode) folds at fuse time like the SRAM wait states
    do - so steady-state line crossings pay no Python call.  A fetch
    straddling two lines keeps the bound ``_access`` call for its second
    line (rare, and the first access just rewrote the stream state).
    """
    line = address & ~(device.line_bytes - 1)
    straddles = address + size > line + device.line_bytes
    lines = [
        f"if {dev}._buffered_line == {line}:",
        f"    {dev}.sequential_hits += 1",
        f"    {stall_var} = 0",
        "else:",
    ]
    if inline_access:
        miss = [
            f"b = {dev}._buffered_line",
            f"if {dev}._streaming and b is not None and b == {line - device.line_bytes}:",
            f"    {dev}._buffered_line = {line}",
            f"    {dev}.array_accesses += 1",
        ]
        if device.prefetch:
            miss += [f"    {dev}.sequential_hits += 1",
                     f"    {stall_var} = 0"]
        else:
            miss.append(f"    {stall_var} = {device.access_cycles}")
        miss += [
            "else:",
            "    if b is not None:",
            f"        {dev}.stream_breaks += 1",
            f"    {dev}._buffered_line = {line}",
            f"    {dev}._streaming = True",
            f"    {dev}.array_accesses += 1",
            f"    {stall_var} = {device.access_cycles}",
        ]
        lines += ["    " + stmt for stmt in miss]
    else:
        lines.append(f"    {stall_var} = {da}({address})")
    if straddles:
        lines.append(f"{stall_var} += {da}({address + size - 1})")
    return lines


def _parity_fold(var: str) -> list[str]:
    """Statements folding ``var`` to its even-parity bit in bit 0 - a
    literal transcription of :func:`repro.memory.cache.parity32`."""
    return [f"{var} ^= {var} >> 16",
            f"{var} ^= {var} >> 8",
            f"{var} ^= {var} >> 4",
            f"{var} ^= {var} >> 2",
            f"{var} ^= {var} >> 1"]


def _emit_cache_fetch(cpu, cache, address, size, index, ns):
    """Inline one cached instruction fetch, leaving the stalls in ``s``.

    A statement-for-statement transcription of ``Cache.read`` for a
    constant address (geometry folded at fuse time via
    :meth:`~repro.memory.cache.Cache.lookup_plan`): way lookup with
    tag-parity screening, hit/miss counters, fill on miss, data-parity
    verification (the rare mismatch falls back to the bound
    ``_check_parity``, which recounts and recovers exactly as the
    reference would), and the LRU touch.  The value read is dropped -
    instruction fetches are timing-only.  Fetches that straddle a cache
    line, and a disabled cache, fall back to the prebound thunk.
    """
    plan = cache.lookup_plan(address, size)
    if plan is None:
        return None  # line-straddling fetch: keep the closure-call thunk
    thunk = cpu._fetch_thunk(address, size)
    if thunk is None:
        return None
    tag, set_index, offset, ways = plan
    ns.setdefault("IC", cache)
    ns.setdefault("ICS", cache.stats)
    ns.setdefault("ICF", cache._fill)
    ns.setdefault("ICP", cache._check_parity)
    ns[f"W{index}"] = ways
    ns[f"F{index}"] = thunk
    ln = f"ln{index}"
    body = [
        f"{ln} = None",
        f"for _c in W{index}:",
        "    if not _c.valid:",
        "        continue",
        "    _t = _c.tag",
    ]
    body += ["    " + stmt for stmt in _parity_fold("_t")]
    body += [
        "    if (_t & 1) != _c.tag_parity:",
        "        ICS.tag_errors += 1",
        "        _c.valid = False",
        "        continue",
        f"    if _c.tag == {tag}:",
        f"        {ln} = _c",
        "        break",
        f"if {ln} is None:",
        "    ICS.misses += 1",
        f"    {ln}, s = ICF({tag}, {set_index}, 'I')",
        "else:",
        "    ICS.hits += 1",
        "    s = 0",
        f"_d = {ln}.data",
    ]
    first_word = offset // 4
    last_word = (offset + size - 1) // 4
    recover = f"s += ICP({ln}, {offset}, {size}, {tag}, {set_index}, 'I')"
    indent = ""
    for word in range(first_word, last_word + 1):
        o = word * 4
        body += [indent + stmt for stmt in (
            [f"_w = _d[{o}] | (_d[{o + 1}] << 8) | (_d[{o + 2}] << 16)"
             f" | (_d[{o + 3}] << 24)"]
            + _parity_fold("_w")
            + [f"if (_w & 1) != {ln}.word_parity[{word}]:",
               "    " + recover]
        )]
        if word != last_word:
            # _check_parity stops at the first mismatch: later words are
            # only verified when the earlier ones were clean
            body.append(indent + "else:")
            indent += "    "
    body += [
        "IC._lru_clock += 1",
        f"{ln}.lru = IC._lru_clock",
    ]
    lines = ["if IC.enabled:"]
    lines += ["    " + stmt for stmt in body]
    lines += ["else:", f"    s = F{index}()"]
    return lines


def _emit_fetch(cpu, uop, index, ns, ftrack):
    """Emit the instruction-fetch sequence assigning stall cycles to ``s``.

    Returns ``(lines, static_stalls)``.  When the core fetches straight
    from the bus and the (statically known) instruction address lands in a
    plain SRAM or flash device, the whole fetch - device decode, stream
    bookkeeping, bus statistics, access record - is emitted inline, so the
    hot path pays no Python call at all (flash pays one ``_access`` call
    per line crossing only).  ``static_stalls`` is the constant stall
    count when it is statically known (SRAM), letting the caller fold it
    into the cycle cost; otherwise ``None`` and the stalls are in ``s``.

    Every inline form is a literal transcription of the corresponding
    ``SystemBus.fetch_stalls`` + device ``fetch_stalls`` pair, in order:
    device timing first, then read counter, stall total, access record.
    Cores that fetch through an instruction cache (``cpu._fetch_cache``)
    get the cached fetch emitted inline instead (:func:`_emit_cache_fetch`).
    """
    address, size = uop.address, uop.size
    device = cpu._fetch_bus_device(address, size)
    if device is not None and type(device) is Sram:
        ws = device.wait_states
        ns[f"D{index}"] = device
        ns.setdefault("AR", AccessRecord)
        lines = [
            f"D{index}.reads += 1",
            "bus.reads += 1",
            f"bus.total_stalls += {ws}",
            "if bus.record:",
            f"    bus.accesses.append(AR({address}, {size}, 'R', 'I', {ws}))",
        ]
        return lines, ws
    if device is not None and type(device) is Flash:
        dev = f"D{index}"
        ns[dev] = device
        ns[f"DA{index}"] = device._access
        ns.setdefault("AR", AccessRecord)
        if cpu.trace_superblocks:
            static = _flash_static_parts(device, dev, address, size, ftrack)
            if static is not None:
                stmts, counters, stalls = static
                lines = list(stmts)
                lines += [f"{name}.{attr} += 1" for name, attr in counters]
                lines += [
                    "bus.reads += 1",
                    f"bus.total_stalls += {stalls}",
                    "if bus.record:",
                    f"    bus.accesses.append("
                    f"AR({address}, {size}, 'R', 'I', {stalls}))",
                ]
                return lines, stalls
            _flash_track_dynamic(device, address, size, ftrack)
        lines = _flash_fetch_lines(device, dev, f"DA{index}",
                                   address, size, "s",
                                   inline_access=cpu.trace_superblocks)
        lines += [
            "bus.reads += 1",
            "bus.total_stalls += s",
            "if bus.record:",
            f"    bus.accesses.append(AR({address}, {size}, 'R', 'I', s))",
        ]
        return lines, None
    # fetches through caches or opaque ports may reach flash devices
    # behind the scenes: forget any statically tracked stream state
    ftrack.clear()
    cache = cpu._fetch_cache() if cpu.trace_superblocks else None
    if cache is not None:
        lines = _emit_cache_fetch(cpu, cache, address, size, index, ns)
        if lines is not None:
            return lines, None
    thunk = cpu._fetch_thunk(address, size)
    if thunk is not None:
        ns[f"F{index}"] = thunk
        return [f"s = F{index}()"], None
    ns[f"F{index}"] = cpu._fetch_port()
    return [f"s = F{index}({address}, {size})"], None


# ----------------------------------------------------------------------
# block fusion
# ----------------------------------------------------------------------

def _emit_step(cpu, uop, index, ns, isa, ftrack):
    """Emit the full per-step sequence for one chainable micro-op.

    Transcribes ``_bind_uop_slim`` statement for statement: fetch,
    (predicate,) execute, cycle accounting, instruction count, PC write.
    Returns None when the micro-op has no slim form (the caller then calls
    its bound step closure).
    """
    ins = uop.ins
    cycle_fn = cpu.compile_cycles(ins)
    base = getattr(cycle_fn, "static_base", None) if cycle_fn is not None else None
    if uop.cond_check is not None and base is None:
        return None
    fetch_lines, static_stalls = _emit_fetch(cpu, uop, index, ns, ftrack)
    stall_expr = "s" if static_stalls is None else str(static_stalls)
    mem = uop.kind == "mem"
    if uop.cond_check is None:
        body, ds_mode = _emit_exec(cpu, ins, isa, index, ns, ftrack)
    else:
        # a predicated body may or may not run: emit it without static
        # flash-state folding (a throwaway tracker), and treat the device
        # state as unknown afterwards when the body touches memory
        body, ds_mode = _emit_exec(cpu, ins, isa, index, ns, {})
        if mem:
            ftrack.clear()
    if body is None:
        ns[f"E{index}"] = uop.exec
        ns[f"O{index}"] = Outcome()
        body = [f"E{index}(cpu, O{index})"]
        ds_mode = "attr" if mem else None
        if mem:
            body.insert(0, "cpu._data_stalls = 0")
            ftrack.clear()  # closure-run accesses may reach flash
    if base is not None:
        if static_stalls is not None:
            cost = str(base + static_stalls)
        else:
            cost = f"{base} + s"
    else:
        if cycle_fn is None:
            def cycle_fn(outcome, _ins=ins, _dyn=cpu.instruction_cycles):
                return _dyn(_ins, outcome)
        ns[f"K{index}"] = cycle_fn
        if f"O{index}" not in ns:
            ns[f"O{index}"] = Outcome()
        cost = f"K{index}(O{index}) + {stall_expr}"
    if ds_mode == "attr":
        cost += " + cpu._data_stalls"
    elif ds_mode == "local":
        cost += " + ds"
    lines = list(fetch_lines)
    if uop.cond_check is None:
        lines += body
        lines.append(f"cpu.cycles += {cost}")
    else:
        lines.append("f = cpu.apsr")
        lines.append(f"if {_cond_test(ins)}:")
        lines += ["    " + b for b in body]
        lines.append(f"    cpu.cycles += {cost}")
        lines.append("else:")
        skipped_cost = "1 + s" if static_stalls is None else str(1 + static_stalls)
        lines.append(f"    cpu.cycles += {skipped_cost}")
        lines.append("    cpu.instructions_skipped += 1")
    lines.append("cpu.instructions_executed += 1")
    lines.append(f"rvals[15] = {uop.next_pc}")
    return lines


def _emit_branch_ender(cpu, uop, index, ns, ftrack):
    """Inline a superblock's terminating branch, or None for closure call.

    Covers exactly the shapes ``_compile_branch`` specialises (resolved
    targets, register BX/BLX not via the PC), transcribing the general
    bound step's bookkeeping around them: a taken branch counts in
    ``branches_taken`` and skips the PC advance; a condition-failed branch
    costs 1 cycle, counts as skipped, and falls through.  The
    ``cpu.branch`` call is kept - halt detection and the cores' exception-
    return hooks live there.
    """
    ins = uop.ins
    op = ins.mnemonic
    if op not in ("B", "BL", "BX", "BLX"):
        return None
    cycle_fn = cpu.compile_cycles(ins)
    base = getattr(cycle_fn, "static_base", None) if cycle_fn is not None else None
    taken = getattr(cycle_fn, "static_taken", None) if cycle_fn is not None else None
    if base is None or taken is None:
        return None
    taken_lines = []
    if op in ("BX", "BLX") and ins.rm is not None:
        if ins.rm == PC:
            return None
        if op == "BLX":
            # read the target before writing LR: `blx lr` must branch to
            # the OLD link register (same order as _compile_branch)
            taken_lines.append(f"t = rvals[{ins.rm}]")
            taken_lines.append(f"rvals[14] = {(ins.address + ins.size) & MASK32}")
            taken_lines.append("BR(t & ~1)")
        else:
            taken_lines.append(f"BR(rvals[{ins.rm}] & ~1)")
    elif ins.target is not None:
        if op == "BL":
            taken_lines.append(f"rvals[14] = {(ins.address + ins.size) & MASK32}")
        elif op != "B":
            return None  # BX/BLX without rm: fallback handler raises
        inline = cpu._branch_inline(ins.target)
        if inline is not None:
            taken_lines += inline
        else:
            taken_lines.append(f"BR({ins.target})")
    else:
        return None  # unresolved label: generic path raises
    # always bound: core inline forms route their rare arms through it
    ns.setdefault("BR", cpu.branch)
    fetch_lines, static_stalls = _emit_fetch(cpu, uop, index, ns, ftrack)
    if static_stalls is not None:
        taken_cost = str(taken + static_stalls)
        skip_cost = str(1 + static_stalls)
    else:
        taken_cost = f"{taken} + s"
        skip_cost = "1 + s"
    lines = list(fetch_lines)
    if uop.cond_check is None:
        lines += taken_lines
        lines.append("cpu.branches_taken += 1")
        lines.append(f"cpu.cycles += {taken_cost}")
        lines.append("cpu.instructions_executed += 1")
        return lines
    lines.append("f = cpu.apsr")
    lines.append(f"if {_cond_test(ins)}:")
    lines += ["    " + t for t in taken_lines]
    lines.append("    cpu.branches_taken += 1")
    lines.append(f"    cpu.cycles += {taken_cost}")
    lines.append("else:")
    lines.append(f"    cpu.cycles += {skip_cost}")
    lines.append("    cpu.instructions_skipped += 1")
    lines.append(f"    rvals[15] = {uop.next_pc}")
    lines.append("cpu.instructions_executed += 1")
    return lines


def _backedge_eligible(cpu, uop, entry) -> bool:
    """Whether the block's ender is a fusable loop back-edge: a direct
    branch to the block's own head with a statically known cycle cost."""
    if not uop.is_back_edge or uop.branch_target != entry:
        return False
    cycle_fn = cpu.compile_cycles(uop.ins)
    return (cycle_fn is not None
            and getattr(cycle_fn, "static_base", None) is not None
            and getattr(cycle_fn, "static_taken", None) is not None)


def _emit_loop_backedge(cpu, uop, index, ns, entry, count, ftrack):
    """Inline a loop back-edge that *continues* the enclosing while-loop.

    The trace-engine variant of :func:`_emit_branch_ender` for a direct
    branch whose target is the block's own head: the taken path performs
    the identical branch bookkeeping, then revalidates the conditions the
    engine's dispatch loop would have checked before re-entering the block
    - PC really back at the head and not halted (only when the real
    ``cpu.branch`` had to be called), interrupt queue still empty (the
    event horizon: with an empty queue no poll can have an effect), and
    one more full iteration inside the instruction budget.  When every
    guard holds the generated loop continues with zero engine dispatch;
    otherwise the function returns with the machine exactly where per-step
    execution would have left it, and the engine takes over.  Returns
    ``None`` when the back-edge has no static-cost inline form (the block
    then fuses as a plain straight-line superblock).
    """
    ins = uop.ins
    if ins.mnemonic != "B" or uop.branch_target != entry:
        return None
    cycle_fn = cpu.compile_cycles(ins)
    base = getattr(cycle_fn, "static_base", None) if cycle_fn is not None else None
    taken = getattr(cycle_fn, "static_taken", None) if cycle_fn is not None else None
    if base is None or taken is None:
        return None
    ns.setdefault("BR", cpu.branch)  # core inline forms use it for rare arms
    inline = cpu._branch_inline(entry)
    if inline is not None:
        # the inline contract: pc ends at the constant target, not halted
        taken_lines = list(inline)
        recheck = []
    else:
        taken_lines = [f"BR({entry})"]
        # a full branch() call may halt or redirect: revalidate before
        # looping
        recheck = [f"if cpu.halted or rvals[15] != {entry}:",
                   "    return"]
    fetch_lines, static_stalls = _emit_fetch(cpu, uop, index, ns, ftrack)
    if static_stalls is not None:
        taken_cost = str(taken + static_stalls)
        skip_cost = str(1 + static_stalls)
    else:
        taken_cost = f"{taken} + s"
        skip_cost = "1 + s"
    taken_lines += [
        "cpu.branches_taken += 1",
        f"cpu.cycles += {taken_cost}",
        "cpu.instructions_executed += 1",
    ]
    taken_lines += recheck
    # IRQQ is the controller queue bound at fuse time (the engine drops
    # all fused blocks if the controller is swapped between runs), so the
    # event-horizon revalidation is one truthiness test per iteration.
    # Under the cycle-coupled engine (co-simulation quanta) the guard
    # additionally tests the cycle ceiling, so a fused loop keeps looping
    # between bus events and returns, bit-exactly at an iteration
    # boundary, when the quantum (minus the block's cycle cap) is reached.
    guard = f"IRQQ or cpu.instructions_executed + {count} > cpu._sb_limit"
    if cpu._sb_cycle_coupled:
        guard = ("IRQQ or cpu.cycles >= cpu._sb_cycle_limit"
                 f" or cpu.instructions_executed + {count} > cpu._sb_limit")
    taken_lines += [
        f"if {guard}:",
        "    return",
        "continue",
    ]
    lines = list(fetch_lines)
    if uop.cond_check is None:
        return lines + taken_lines
    lines.append("f = cpu.apsr")
    lines.append(f"if {_cond_test(ins)}:")
    lines += ["    " + t for t in taken_lines]
    # every taken path continued or returned: falling through means the
    # branch direction changed (loop exit) - the bit-exact fallback
    lines.append(f"cpu.cycles += {skip_cost}")
    lines.append("cpu.instructions_skipped += 1")
    lines.append("cpu.instructions_executed += 1")
    lines.append(f"rvals[15] = {uop.next_pc}")
    lines.append("return")
    return lines


# ----------------------------------------------------------------------
# span coalescing: deferred accounting across provably raise-free runs
# ----------------------------------------------------------------------

_FLAGS = ("n", "z", "c", "v")

#: mnemonics whose inline exec bodies are pure ALU (registers and flags
#: only - no memory, no calls, nothing that can raise): the only ops a
#: coalesced span may contain
_LEAN_OPS = frozenset({
    "NOP", "DSB", "ISB", "BKPT", "MOV", "MVN", "ADD", "SUB", "LSL", "LSR",
    "ASR", "ROR", "CMP", "CMN", "TST", "TEQ", "MUL", "CLZ", "UXTB", "UXTH",
    "SXTB", "SXTH", "MOVW", "MOVT", "UBFX",
}) | frozenset(_LOGIC_EXPR)


def _lean_step(cpu, uop, index, ns, isa, ftrack):
    """One step prepared for *span coalescing*, or ``None``.

    A lean step is an unconditional chainable micro-op whose inline form
    provably cannot raise: a pure-ALU body (no data access, no closure
    call) fetched straight from a plain SRAM or flash device with a static
    cycle cost.  For a run of such steps nothing outside the CPU's own
    registers can observe the boundaries between them, so the counter
    updates (cycles, instruction count, bus reads/stalls, access records)
    and intermediate PC writes are deferred to the end of the span
    (:func:`_flush_span`) - the sums are identical, and any *barrier* (a
    step that can fault or call out) flushes first, so a mid-block
    exception still observes exactly the per-step state.

    Returns a dict of the step's parts: fetch statements (flash stream
    bookkeeping stays in place - its order against other flash traffic is
    device state), value statements, and per-flag assignments kept
    separate so :func:`_flush_span` can drop writes that are dead within
    the span (overwritten before the span ends; the span end itself is a
    full barrier, so flags that survive to it are always materialised).
    """
    if not uop.chainable or uop.cond_check is not None:
        return None
    ins = uop.ins
    if ins.mnemonic not in _LEAN_OPS:
        return None
    cycle_fn = cpu.compile_cycles(ins)
    base = getattr(cycle_fn, "static_base", None) if cycle_fn is not None else None
    if base is None:
        return None
    body, ds_mode = _emit_exec(cpu, ins, isa, index, ns, ftrack)
    if body is None or ds_mode is not None:
        return None
    entry = _lean_fetch(cpu, uop, index, ns, ftrack, base)
    if entry is None:
        return None
    for stmt in body:
        if stmt == "f = cpu.apsr":
            continue
        if stmt.startswith("f."):
            entry["flags"][stmt[2]] = stmt
        else:
            entry["body"].append(stmt)
    return entry


def _lean_fetch(cpu, uop, index, ns, ftrack, base):
    """A span entry with the fetch parts filled in, or ``None``.

    Only plain SRAM and flash fetches qualify (provably raise-free); the
    flash form uses the statically resolved stream arm when the fuse-time
    tracker knows the state, the dynamic transcription otherwise.
    """
    address, size = uop.address, uop.size
    device = cpu._fetch_bus_device(address, size)
    entry = {
        "fetch": [], "stall_consts": 0, "stall_vars": [], "records": [],
        "counters": (), "reads": 1, "writes": 0, "branches": 0,
        "escape": False, "body": [], "flags": {}, "base": base,
        "next_pc": uop.next_pc,
    }
    if device is not None and type(device) is Sram:
        ns[f"D{index}"] = device
        ns.setdefault("AR", AccessRecord)
        ws = device.wait_states
        entry["stall_consts"] = ws
        entry["counters"] = ((f"D{index}", "reads"),)
        entry["records"].append(f"AR({address}, {size}, 'R', 'I', {ws})")
        return entry
    if device is not None and type(device) is Flash:
        dev = f"D{index}"
        ns[dev] = device
        ns[f"DA{index}"] = device._access
        ns.setdefault("AR", AccessRecord)
        static = _flash_static_parts(device, dev, address, size, ftrack)
        if static is not None:
            stmts, counters, stalls = static
            entry["fetch"] = list(stmts)
            entry["counters"] = tuple(counters)
            entry["stall_consts"] = stalls
            entry["records"].append(f"AR({address}, {size}, 'R', 'I', {stalls})")
        else:
            _flash_track_dynamic(device, address, size, ftrack)
            stall_var = f"s{index}"
            entry["fetch"] = _flash_fetch_lines(device, dev, f"DA{index}",
                                                address, size, stall_var,
                                                inline_access=True)
            entry["stall_vars"].append(stall_var)
            entry["records"].append(
                f"AR({address}, {size}, 'R', 'I', {stall_var})")
        return entry
    return None


def _lean_mem_step(cpu, uop, index, ns, ftrack, span):
    """A plain load/store prepared for span membership, or ``None``.

    The common path - span-cache hit on an SRAM device (and, for a
    literal pool, a constant SRAM/flash address proven in bounds at fuse
    time) - is raise-free, so the step's accounting defers with the rest
    of the span.  Every rare path (span miss, device overrun, an MPU
    attached after fusion) first materialises the deferred state
    (:func:`_span_accounting` with the step's own fetch as the partial
    contribution - exactly what the per-step engine would have committed
    before the faulting body), then completes the instruction through the
    mediated ``cpu.read``/``cpu.write`` path and returns to the engine;
    a fault raised there observes bit-exact per-step state.  Only fused
    without a fuse-time MPU: a protected core keeps the barrier form,
    whose inline MPU check stays on the fast path.
    """
    if not uop.chainable or uop.cond_check is not None:
        return None
    ins = uop.ins
    op = ins.mnemonic
    if op in _LOAD_SIZES:
        load = True
        size = _LOAD_SIZES[op]
    elif op in _STORE_SIZES:
        load = False
        size = _STORE_SIZES[op]
    else:
        return None
    mem = ins.mem
    rd = ins.rd
    if mem is None or rd is None or rd == PC or mem.writeback or mem.postindex:
        return None
    if mem.rm == PC or (not load and mem.rn == PC):
        return None
    plan = _active_plan(cpu)
    if plan is None or (plan == "mpu" and cpu.mpu is not None):
        return None
    cycle_fn = cpu.compile_cycles(ins)
    base = getattr(cycle_fn, "static_base", None) if cycle_fn is not None else None
    if base is None:
        return None
    sign_bits = _SIGNED_LOADS.get(op) if load else None
    literal_device = None
    literal_address = None
    if load and mem.rn == PC:
        # resolve the literal before any tracker-mutating emission so a
        # rejection leaves the fuse-time stream state untouched
        pc_off = 8 if cpu.program.isa == "arm" else 4
        literal_address = (((ins.address + pc_off) & ~3) + mem.offset) & MASK32
        literal_device = cpu.bus._lookup(literal_address)
        if (literal_device is None
                or literal_address + size > literal_device.base + literal_device.size
                or type(literal_device) not in (Sram, Flash)):
            return None
    entry = _lean_fetch(cpu, uop, index, ns, ftrack, base)
    if entry is None:
        return None
    if entry["stall_vars"]:
        fetch_stalls = entry["stall_vars"][0]
    else:
        fetch_stalls = str(entry["stall_consts"])
    vmask = None if load else _STORE_MASKS[size]

    def completion(access_expr: str) -> list[str]:
        """The mediated rest-of-instruction an escape arm runs."""
        done = ["cpu._data_stalls = 0", access_expr]
        if load:
            done += _load_sign_lines(sign_bits)
            done.append(f"rvals[{rd}] = v & {MASK32}")
        done += [
            f"cpu.cycles += {base} + {fetch_stalls} + cpu._data_stalls",
            "cpu.instructions_executed += 1",
            f"rvals[15] = {uop.next_pc}",
            "return",
        ]
        return done

    body = entry["body"]
    ns.setdefault("AR", AccessRecord)
    ns.setdefault("IFB", int.from_bytes)
    if load and mem.rn == PC:
        # literal pool: constant address, device and bounds proven above;
        # only SRAM and flash are known raise-free
        address = literal_address
        device = literal_device
        if plan == "mpu":
            # an MPU attached after fusion reroutes through the mediated
            # path (which consults it and faults bit-exactly)
            entry["escape"] = True
            body.append("if cpu.mpu is not None:")
            body += ["    " + stmt for stmt in
                     _span_accounting(list(span), uop.address, partial=entry)
                     + completion(f"v = RD({address}, {size})")]
        offset = address - device.base
        dev = f"DV{index}"
        ns[dev] = device
        if type(device) is Sram:
            entry["counters"] += ((dev, "reads"),)
            entry["stall_consts"] += device.wait_states
            entry["records"].append(
                f"AR({address}, {size}, 'R', 'D', {device.wait_states})")
        else:
            ns[f"DAL{index}"] = device._access
            static = _flash_static_parts(device, dev, address, size, ftrack)
            if static is not None:
                stmts, counters, stalls = static
                body += stmts
                entry["counters"] += tuple(counters)
                entry["stall_consts"] += stalls
                entry["records"].append(
                    f"AR({address}, {size}, 'R', 'D', {stalls})")
            else:
                _flash_track_dynamic(device, address, size, ftrack)
                stall_var = f"ds{index}"
                body += _flash_fetch_lines(device, dev, f"DAL{index}",
                                           address, size, stall_var,
                                           inline_access=True)
                entry["stall_vars"].append(stall_var)
                entry["records"].append(
                    f"AR({address}, {size}, 'R', 'D', {stall_var})")
        body.append(f"v = IFB({dev}.data[{offset}:{offset + size}], 'little')")
        body += _load_sign_lines(sign_bits)
        body.append(f"rvals[{rd}] = v & {MASK32}")
        entry["reads"] += 1
        return entry
    # register-addressed: span-cache hit on an SRAM device is the lean
    # path (the span bounds prove the access in range, SRAM cannot fault,
    # and an SRAM access cannot disturb tracked flash stream state)
    addr = f"a{index}"
    stall_var = f"ds{index}"
    if mem.rn == PC:
        return None
    if mem.rm is None:
        body.append(f"{addr} = (rvals[{mem.rn}] + {mem.offset}) & {MASK32}")
    else:
        body.append(f"{addr} = (rvals[{mem.rn}] + ((rvals[{mem.rm}]"
                    f" << {mem.shift}) & {MASK32})) & {MASK32}")
    ns.setdefault("SRT", Sram)
    guard = "cpu.mpu is None and " if plan == "mpu" else ""
    entry["escape"] = True
    body.append("sp = bus._span_d")
    body.append(f"if {guard}sp[0] <= {addr} and {addr} + {size} <= sp[1]"
                " and type(sp[2]) is SRT:")
    lean_arm = [
        "d = sp[2]",
        f"d.{'reads' if load else 'writes'} += 1",
        f"o = {addr} - d.base",
    ]
    if load:
        lean_arm.append(f"v = IFB(d.data[o:o + {size}], 'little')")
    else:
        lean_arm.append(f"d.data[o:o + {size}] = "
                        f"(rvals[{rd}] & {vmask}).to_bytes({size}, 'little')")
    lean_arm.append(f"{stall_var} = d.wait_states")
    body += ["    " + stmt for stmt in lean_arm]
    body.append("else:")
    if load:
        access = f"v = RD({addr}, {size})"
    else:
        access = f"WR({addr}, {size}, rvals[{rd}] & {vmask})"
    body += ["    " + stmt for stmt in
             _span_accounting(list(span), uop.address, partial=entry)
             + completion(access)]
    if load:
        body += _load_sign_lines(sign_bits)
        body.append(f"rvals[{rd}] = v & {MASK32}")
        entry["reads"] += 1
        entry["records"].append(f"AR({addr}, {size}, 'R', 'D', {stall_var})")
    else:
        entry["writes"] += 1
        entry["records"].append(f"AR({addr}, {size}, 'W', 'D', {stall_var})")
    entry["stall_vars"].append(stall_var)
    return entry


def _lean_branch_step(cpu, uop, index, ns, ftrack):
    """An unconditional direct goto prepared for span membership, or None.

    A mid-trace ``B`` whose core inlines to a pure constant PC write is
    fully raise-free and observes nothing: the PC write defers with the
    span (subsequent entries' ``next_pc`` values already follow the
    jump) and the taken-branch count joins the deferred accounting.
    Always taken, so the step costs the static taken cycles.
    """
    ins = uop.ins
    if (uop.chainable or uop.cond_check is not None or ins.mnemonic != "B"
            or uop.branch_target is None):
        return None
    cycle_fn = cpu.compile_cycles(ins)
    taken = getattr(cycle_fn, "static_taken", None) if cycle_fn is not None else None
    if taken is None:
        return None
    inline = cpu._branch_inline(uop.branch_target)
    if inline != [f"rvals[15] = {uop.branch_target}"]:
        # only a pure PC write may defer with the span: a core inline form
        # with extra arms (the VIC return-stack unwind reads cpu.cycles)
        # must observe exact per-step state, so those gotos keep the
        # barrier ender - still chained into the trace, just flushed around
        return None
    entry = _lean_fetch(cpu, uop, index, ns, ftrack, taken)
    if entry is None:
        return None
    # the PC write itself is deferred: the span's PC chain continues at
    # the branch target
    entry["next_pc"] = uop.branch_target
    entry["branches"] = 1
    return entry


def _span_accounting(span, pc, partial=None) -> list[str]:
    """The deferred-accounting statements for ``span`` (in emission order:
    device counters, bus counters, access records, cycles, instruction
    count, PC).  With ``partial`` - the escaping step's entry - only that
    step's *fetch-side* contribution joins the bus statistics (the
    reference charges an instruction's cycles after its body, so a body
    that faults has its fetch on the bus but not on the cycle counter),
    and its instruction count/cycles are left to the escape arm."""
    lines = []
    counter_totals: dict[tuple, int] = {}
    entries = span if partial is None else span + [partial]
    for entry in entries:
        for counter in entry["counters"]:
            counter_totals[counter] = counter_totals.get(counter, 0) + 1
    for (dev, attr), count in counter_totals.items():
        lines.append(f"{dev}.{attr} += {count}")
    reads = sum(e["reads"] for e in span)
    writes = sum(e["writes"] for e in span)
    stall_const = sum(e["stall_consts"] for e in span)
    stall_vars = [v for e in span for v in e["stall_vars"]]
    records = [r for e in span for r in e["records"]]
    bus_const, bus_vars = stall_const, list(stall_vars)
    if partial is not None:
        reads += 1  # the escaping step's fetch went out on the bus
        bus_const += partial["stall_consts"]
        bus_vars += partial["stall_vars"]
        records += partial["records"]
    if reads:
        lines.append(f"bus.reads += {reads}")
    if writes:
        lines.append(f"bus.writes += {writes}")
    branches = sum(e["branches"] for e in span)
    if branches:
        lines.append(f"cpu.branches_taken += {branches}")
    bus_tail = "".join(f" + {v}" for v in bus_vars)
    if bus_const or bus_tail:
        lines.append(f"bus.total_stalls += {bus_const}{bus_tail}")
    if records:
        lines.append("if bus.record:")
        lines += [f"    bus.accesses.append({record})" for record in records]
    if span:
        base_total = sum(e["base"] for e in span)
        cycle_tail = "".join(f" + {v}" for v in stall_vars)
        lines.append(f"cpu.cycles += {base_total + stall_const}{cycle_tail}")
        lines.append(f"cpu.instructions_executed += {len(span)}")
    lines.append(f"rvals[15] = {pc}")
    return lines


def _flush_span(span, lines):
    """Emit a coalesced span: bodies in order, then the deferred accounting.

    Flag liveness runs backwards over the span - a flag write is dead only
    when a later step in the *same* span overwrites it before any point
    where the flags are observable: the span end (a full barrier) and
    every escape arm (a memory step's rare fallback exits the function
    mid-span), so entries carrying an escape reset the liveness to "all
    live" for everything before them.  The deferred counters are emitted
    as single aggregated statements, the access records in access order
    under one ``bus.record`` test, and the PC once, at the span's final
    next-PC.
    """
    if not span:
        return
    live = set(_FLAGS)
    for entry in reversed(span):
        entry["dead"] = set(entry["flags"]) - live
        live -= set(entry["flags"])
        if entry["escape"]:
            live = set(_FLAGS)
    flags_bound = False
    for entry in span:
        lines.extend(entry["fetch"])
        lines.extend(entry["body"])
        kept = [stmt for flag, stmt in entry["flags"].items()
                if flag not in entry["dead"]]
        if kept:
            if not flags_bound:
                lines.append("f = cpu.apsr")
                flags_bound = True
            lines.extend(kept)
    lines += _span_accounting(span, span[-1]["next_pc"])
    span.clear()


_SB_FUSED = obs.counter(
    "engine.superblocks.fused",
    "Superblocks compiled into a single fused callable")
_COMPILE_SECONDS = obs.histogram(
    "engine.superblock.compile_seconds",
    "Wall time to emit + compile one fused superblock (code-cache hits "
    "included; they land in the lowest buckets)",
    buckets=obs.FAST_SECONDS_BUCKETS)


def fuse_block(cpu, uops, steps):
    """Compile one superblock into a single callable (see
    :func:`_fuse_block`; this wrapper only adds out-of-band telemetry)."""
    if not obs.REGISTRY.enabled:
        return _fuse_block(cpu, uops, steps)
    start = _perf_counter()
    fused = _fuse_block(cpu, uops, steps)
    _SB_FUSED.add()
    _COMPILE_SECONDS.observe(_perf_counter() - start)
    return fused


def _fuse_block(cpu, uops, steps):
    """Compile one superblock into a single callable.

    ``uops`` are the block's micro-ops and ``steps`` the matching bound
    step closures (the list the engine executes pre-fusion); positions
    that cannot be inlined fall back to calling their bound step, so the
    fused function is behaviourally the list loop with the frames removed.
    Runs of raise-free pure-ALU steps coalesce their accounting
    (:func:`_lean_step` / :func:`_flush_span`); every other position is a
    barrier that flushes first, keeping mid-block faults bit-exact.

    With ``cpu.trace_superblocks`` set and the block terminated by a loop
    back-edge (a direct branch back to the block's own head), the whole
    body is wrapped in a ``while True:`` whose taken-branch path continues
    in place (see :func:`_emit_loop_backedge`): a full loop iteration runs
    as one generated code object executed N times, with the per-iteration
    guard limited to the branch condition, the interrupt queue, and the
    instruction budget.
    """
    ns = {
        "cpu": cpu,
        "rvals": cpu.regs.values,
        "RD": cpu.read,
        "WR": cpu.write,
    }
    if getattr(cpu, "bus", None) is not None:
        ns["bus"] = cpu.bus
    last = len(uops) - 1
    is_loop = (cpu.trace_superblocks and not uops[last].chainable
               and _backedge_eligible(cpu, uops[last], uops[0].address))
    if is_loop:
        ns["IRQQ"] = cpu._irq_queue
    lines = []
    span: list = []
    isa = cpu.program.isa
    coalesce = cpu.trace_superblocks
    ftrack: dict = {}
    for index, (uop, fast_step) in enumerate(zip(uops, steps)):
        if is_loop and index == last:
            _flush_span(span, lines)
            lines.extend(_emit_loop_backedge(cpu, uop, index, ns,
                                             uops[0].address, len(uops),
                                             ftrack))
            continue
        lean = _lean_step(cpu, uop, index, ns, isa, ftrack) if coalesce else None
        if lean is None and coalesce:
            lean = _lean_mem_step(cpu, uop, index, ns, ftrack, span)
        if lean is None and coalesce:
            lean = _lean_branch_step(cpu, uop, index, ns, ftrack)
        if lean is not None:
            span.append(lean)
            continue
        _flush_span(span, lines)
        if uop.chainable:
            emitted = _emit_step(cpu, uop, index, ns, isa, ftrack)
        else:
            emitted = _emit_branch_ender(cpu, uop, index, ns, ftrack)
        if emitted is None:
            ns[f"S{index}"] = fast_step
            lines.append(f"S{index}()")
            ftrack.clear()  # the bound step fetches/accesses opaquely
        else:
            lines.extend(emitted)
    _flush_span(span, lines)
    if is_loop:
        lines = ["while True:"] + ["    " + stmt for stmt in lines]
    # every bound object becomes a default parameter, so the generated
    # body resolves them as locals (LOAD_FAST) instead of dict lookups
    params = ", ".join(f"{name}={name}" for name in ns)
    body = "\n    ".join(lines) if lines else "pass"
    source = f"def _fused({params}):\n    {body}\n"
    code = _CODE_CACHE.get(source)
    if code is None:
        if len(_CODE_CACHE) >= _CODE_CACHE_MAX:
            _CODE_CACHE.clear()  # crude bound; refilling is cheap
        code = compile(source, f"<superblock@{uops[0].address:#x}>", "exec")
        _CODE_CACHE[source] = code
    scope = dict(ns)
    exec(code, scope)
    return scope["_fused"]


#: compiled code objects memoised by generated source: campaign runs build
#: thousands of short-lived machines over identical programs and machine
#: configs, and ``compile()`` dwarfs a cold block's execution time.  The
#: bound objects differ per machine, so only the *code* is shared; binding
#: happens in the (cheap) ``exec`` of the cached code object.
_CODE_CACHE: dict[str, object] = {}
_CODE_CACHE_MAX = 4096
