"""Factory helpers that wire a core, memory map, and program together.

Standard automotive-MCU memory map used throughout the experiments:

====================  ==========================================
``0x0800_0000``       embedded flash (code + literal pools)
``0x2000_0000``       on-chip SRAM (data, stacks)
``0x2200_0000``       bit-band alias of the SRAM (Cortex-M3 only)
====================  ==========================================
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.arm7 import Arm7Core
from repro.core.arm1156 import Arm1156Core
from repro.core.cortexm3 import CortexM3Core
from repro.core.nvic import NvicController
from repro.core.vic import VicController
from repro.isa.assembler import Program
from repro.memory.bitband import BitBandAlias
from repro.memory.bus import SystemBus
from repro.memory.cache import Cache
from repro.memory.flash import Flash
from repro.memory.mpu import Mpu
from repro.memory.sram import Sram
from repro.sim.trace import TraceRecorder

FLASH_BASE = 0x0800_0000
SRAM_BASE = 0x2000_0000
BITBAND_ALIAS_BASE = 0x2200_0000
DEFAULT_FLASH_SIZE = 0x10_0000
DEFAULT_SRAM_SIZE = 0x2_0000


@dataclass
class Machine:
    """A complete simulated MCU: core + memory system + program."""

    cpu: object
    bus: SystemBus
    flash: Flash
    sram: Sram
    bitband: BitBandAlias | None = None
    icache: Cache | None = None
    dcache: Cache | None = None

    @property
    def stack_top(self) -> int:
        return self.sram.base + self.sram.size

    def load_program(self, program: Program) -> None:
        self.bus.load_image(program.base, program.image())

    def load_data(self, addr: int, payload: bytes) -> None:
        self.bus.load_image(addr, payload)

    def reset_stack(self) -> None:
        self.cpu.regs.sp = self.stack_top

    def call(self, symbol: str, *args: int, max_instructions: int = 2_000_000) -> int:
        """Run a labelled routine to completion; returns r0."""
        return self.cpu.call(symbol, *args, sp=self.stack_top,
                             max_instructions=max_instructions)


def _common_bus(program: Program, flash_access_cycles: int, flash_line_bytes: int,
                flash_prefetch: bool, sram_wait_states: int,
                flash_size: int, sram_size: int) -> tuple[SystemBus, Flash, Sram]:
    bus = SystemBus()
    flash = Flash(base=FLASH_BASE, size=flash_size,
                  access_cycles=flash_access_cycles,
                  line_bytes=flash_line_bytes, prefetch=flash_prefetch)
    sram = Sram(base=SRAM_BASE, size=sram_size, wait_states=sram_wait_states)
    bus.attach(flash)
    bus.attach(sram)
    bus.load_image(program.base, program.image())
    return bus, flash, sram


def build_arm7(program: Program, flash_access_cycles: int = 0,
               flash_line_bytes: int = 16, flash_prefetch: bool = True,
               sram_wait_states: int = 0, flash_size: int = DEFAULT_FLASH_SIZE,
               sram_size: int = DEFAULT_SRAM_SIZE,
               trace: TraceRecorder | None = None) -> Machine:
    """An ARM7TDMI-style MCU (runs ARM or Thumb programs)."""
    if program.base < FLASH_BASE or program.base >= FLASH_BASE + flash_size:
        raise ValueError("program must be linked into flash")
    bus, flash, sram = _common_bus(program, flash_access_cycles, flash_line_bytes,
                                   flash_prefetch, sram_wait_states,
                                   flash_size, sram_size)
    cpu = Arm7Core(program, bus, vic=VicController(), trace=trace)
    machine = Machine(cpu=cpu, bus=bus, flash=flash, sram=sram)
    machine.reset_stack()
    return machine


def build_cortexm3(program: Program, flash_access_cycles: int = 0,
                   flash_line_bytes: int = 16, flash_prefetch: bool = True,
                   sram_wait_states: int = 0, flash_size: int = DEFAULT_FLASH_SIZE,
                   sram_size: int = DEFAULT_SRAM_SIZE,
                   tail_chaining: bool = True, mpu: Mpu | None = None,
                   trace: TraceRecorder | None = None) -> Machine:
    """A Cortex-M3-style MCU (Thumb-2 programs) with bit-band alias."""
    if program.isa != "thumb2":
        raise ValueError("the Cortex-M3 model executes Thumb-2 programs only")
    bus, flash, sram = _common_bus(program, flash_access_cycles, flash_line_bytes,
                                   flash_prefetch, sram_wait_states,
                                   flash_size, sram_size)
    bitband = BitBandAlias(base=BITBAND_ALIAS_BASE, target=sram,
                           target_base=SRAM_BASE, target_bytes=sram.size)
    bus.attach(bitband)
    nvic = NvicController(tail_chaining=tail_chaining)
    cpu = CortexM3Core(program, bus, nvic=nvic, mpu=mpu, trace=trace)
    machine = Machine(cpu=cpu, bus=bus, flash=flash, sram=sram, bitband=bitband)
    machine.reset_stack()
    return machine


def build_arm1156(program: Program, flash_access_cycles: int = 4,
                  flash_line_bytes: int = 32, flash_prefetch: bool = True,
                  sram_wait_states: int = 1, flash_size: int = DEFAULT_FLASH_SIZE,
                  sram_size: int = DEFAULT_SRAM_SIZE,
                  cache_sets: int = 64, cache_ways: int = 4,
                  cache_line_bytes: int = 32, caches_enabled: bool = True,
                  fault_tolerant_caches: bool = True,
                  interruptible_ldm: bool = True, mpu: Mpu | None = None,
                  trace: TraceRecorder | None = None) -> Machine:
    """An ARM1156T2-S-style high-end core with I/D caches and MPU.

    Default memory timing reflects a >200 MHz core on slow backing
    memory, which is why the caches (and their miss behaviour, experiment
    E6) matter.
    """
    bus, flash, sram = _common_bus(program, flash_access_cycles, flash_line_bytes,
                                   flash_prefetch, sram_wait_states,
                                   flash_size, sram_size)
    icache = dcache = None
    if caches_enabled:
        icache = Cache(bus, sets=cache_sets, ways=cache_ways,
                       line_bytes=cache_line_bytes,
                       fault_tolerant=fault_tolerant_caches)
        dcache = Cache(bus, sets=cache_sets, ways=cache_ways,
                       line_bytes=cache_line_bytes,
                       fault_tolerant=fault_tolerant_caches)
    cpu = Arm1156Core(program, bus, icache=icache, dcache=dcache,
                      vic=VicController(), mpu=mpu,
                      interruptible_ldm=interruptible_ldm, trace=trace)
    machine = Machine(cpu=cpu, bus=bus, flash=flash, sram=sram,
                      icache=icache, dcache=dcache)
    machine.reset_stack()
    return machine


def build_machine(core: str, program: Program, **kwargs) -> Machine:
    """Dispatch by core name: 'arm7', 'cortex-m3', or 'arm1156'."""
    builders = {
        "arm7": build_arm7,
        "cortex-m3": build_cortexm3,
        "m3": build_cortexm3,
        "arm1156": build_arm1156,
    }
    if core not in builders:
        raise ValueError(f"unknown core {core!r}; pick from {sorted(builders)}")
    return builders[core](program, **kwargs)
