"""ARM7TDMI-like core model: 3-stage, von Neumann, software interrupt entry.

This is the Table 1 baseline.  Key timing properties reproduced:

* a **single bus port** shared by instruction fetch and data access - a
  data access (e.g. a literal-pool load) lands on the same flash device as
  the instruction stream and breaks its sequential prefetch (section 2.2);
* multi-cycle loads/stores and multiplies (the published ARM7TDMI cycle
  counts);
* interrupt entry only swaps the PC; saving registers is the handler's
  software preamble (contrast: :mod:`repro.core.nvic`).

The same core runs both the ARM and Thumb instruction sets (the program's
ISA decides), which is exactly how the paper's ARM7 rows differ.
"""

from __future__ import annotations

from repro.core.cpu import BaseCpu, return_stack_branch_inline
from repro.core.exceptions import InterruptRecord
from repro.core.vic import VicController
from repro.isa.assembler import Program
from repro.isa.instructions import Instruction
from repro.isa.semantics import Outcome
from repro.memory.bus import SystemBus
from repro.sim.trace import TraceRecorder


class Arm7Core(BaseCpu):
    """ARM7TDMI-style timing on the shared system bus."""

    name = "arm7"

    #: fixed interrupt entry overhead: synchronisation + pipeline refill
    ENTRY_OVERHEAD = 5

    def __init__(self, program: Program, bus: SystemBus,
                 vic: VicController | None = None,
                 trace: TraceRecorder | None = None) -> None:
        super().__init__(program, trace)
        self.bus = bus
        self.vic = vic or VicController()
        self._return_stack: list[tuple[InterruptRecord, int, int]] = []

    @property
    def _irq_queue(self) -> list:
        return self.vic.queue

    # ------------------------------------------------------------------
    # memory paths: one port, I and D interleave on the same devices
    # ------------------------------------------------------------------
    _bus_fetch = True  # fetch_stalls is a plain bus delegation

    def fetch_stalls(self, addr: int, size: int) -> int:
        return self.bus.fetch_stalls(addr, size)

    def _data_inline_plan(self) -> str:
        return "direct"  # data path is the bare bus: no per-access checks

    def data_read(self, addr: int, size: int) -> tuple[int, int]:
        return self.bus.read(addr, size, side="D")

    def data_write(self, addr: int, size: int, value: int) -> int:
        return self.bus.write(addr, size, value, side="D")

    # Collapse the read/write -> data_read/data_write delegation: loads and
    # stores are the hottest non-fetch path, and the extra frame per access
    # is pure interpreter overhead.  Identical statistics and timing.
    def read(self, addr: int, size: int) -> int:
        value, stalls = self.bus.read(addr, size, "D")
        self._data_stalls += stalls
        return value

    def write(self, addr: int, size: int, value: int) -> None:
        self._data_stalls += self.bus.write(addr, size, value, "D")

    # ------------------------------------------------------------------
    # published ARM7TDMI cycle counts (S/N/I cycles folded together)
    # ------------------------------------------------------------------
    def instruction_cycles(self, ins: Instruction, outcome: Outcome) -> int:
        if outcome.skipped:
            return 1
        m = ins.mnemonic
        cycles = 1
        if outcome.taken:
            cycles += 2  # pipeline flush + refill
        if m in ("LDR", "LDRB", "LDRH", "LDRSB", "LDRSH"):
            cycles += 2
        elif m in ("STR", "STRB", "STRH"):
            cycles += 1
        elif m in ("LDM", "POP"):
            cycles += outcome.regs_transferred + 1
        elif m in ("STM", "PUSH"):
            cycles += outcome.regs_transferred
        elif m == "MUL":
            cycles += 2
        elif m == "MLA":
            cycles += 3
        elif m in ("UMULL", "SMULL"):
            cycles += 4
        elif m == "SVC":
            cycles += 2
        if ins.rm is not None and ins.shift is None and m in ("LSL", "LSR", "ASR", "ROR"):
            cycles += 1  # register-controlled shift adds an I-cycle
        return cycles

    def compile_cycles(self, ins: Instruction):
        """Prebind the (static) ARM7 cycle cost for the fast path."""
        m = ins.mnemonic
        extra = 0
        if m in ("LDR", "LDRB", "LDRH", "LDRSB", "LDRSH"):
            extra = 2
        elif m in ("STR", "STRB", "STRH"):
            extra = 1
        elif m in ("LDM", "POP"):
            extra = len(ins.reglist) + 1
        elif m in ("STM", "PUSH"):
            extra = len(ins.reglist)
        elif m == "MUL":
            extra = 2
        elif m == "MLA":
            extra = 3
        elif m in ("UMULL", "SMULL"):
            extra = 4
        elif m == "SVC":
            extra = 2
        if ins.rm is not None and ins.shift is None and m in ("LSL", "LSR", "ASR", "ROR"):
            extra += 1
        return self._static_cycle_fn(1 + extra, 3 + extra)

    # ------------------------------------------------------------------
    # classic interrupt scheme: hardware swaps PC, software saves state
    # ------------------------------------------------------------------
    def check_interrupts(self) -> bool:
        request = self.vic.pending_at(self.cycles, masked=not self.interrupts_enabled)
        if request is None:
            return False
        self.vic.acknowledge(request)
        self.sleeping = False
        return_addr = self.regs.pc
        banked_lr = self.regs.lr          # LR is banked per mode on ARM7
        self.regs.lr = return_addr        # hardware leaves the return in LR_irq
        self.cycles += self.ENTRY_OVERHEAD
        record = InterruptRecord(number=request.number,
                                 assert_cycle=request.assert_cycle,
                                 entry_cycle=self.cycles)
        self.vic.stats.records.append(record)
        self._return_stack.append((record, return_addr, banked_lr))
        self.interrupts_enabled = False   # I-bit set on entry
        self.regs.pc = request.handler
        self.trace.emit(self.cycles, "irq", "enter", number=request.number,
                        latency=record.latency)
        return True

    def branch(self, target: int) -> None:
        super().branch(target)
        if self._return_stack and target == self._return_stack[-1][1]:
            record, _, banked_lr = self._return_stack.pop()
            record.exit_cycle = self.cycles
            self.regs.lr = banked_lr        # un-bank the user-mode LR
            self.interrupts_enabled = True  # CPSR restored on return
            self.trace.emit(self.cycles, "irq", "exit", number=record.number)

    def _branch_inline(self, target: int):
        return return_stack_branch_inline(target)
