"""Classic ARM7/ARM9-style vectored interrupt controller.

Interrupt entry is largely a *software* affair on these cores: the hardware
only swaps the PC (and banks a couple of registers, which we fold into the
fixed entry overhead); saving and restoring the working registers is the
handler's job - the "preamble/postamble" the paper's section 3.2.1 contrasts
with the Cortex-M3's hardware scheme.
"""

from __future__ import annotations

from repro.core.exceptions import InterruptRequest, InterruptStats


class VicController:
    """Pending-request bookkeeping for the classic interrupt scheme."""

    def __init__(self) -> None:
        self.queue: list[InterruptRequest] = []
        self.stats = InterruptStats()

    def raise_irq(self, number: int, handler: int, at_cycle: int = 0,
                  priority: int = 0, nmi: bool = False) -> InterruptRequest:
        """Assert an interrupt line (optionally in the future)."""
        request = InterruptRequest(number=number, priority=priority, nmi=nmi,
                                   assert_cycle=at_cycle, handler=handler)
        self.queue.append(request)
        self.queue.sort(key=lambda r: (not r.nmi, r.priority, r.assert_cycle))
        return request

    def pending_at(self, cycle: int, masked: bool) -> InterruptRequest | None:
        """Highest-priority request asserted by ``cycle``.

        When ``masked`` (CPSR I-bit set / CPSID executed) only NMI requests
        are eligible - the paper's section 3.1.2 non-maskable FIQ.
        """
        for request in self.queue:
            if request.assert_cycle > cycle:
                continue
            if masked and not request.nmi:
                continue
            return request
        return None

    def earliest_assert_in(self, start_cycle: int, end_cycle: int,
                           masked: bool) -> int | None:
        """First assert time inside (start, end], for restartable LDM/STM."""
        candidates = [
            r.assert_cycle for r in self.queue
            if start_cycle < r.assert_cycle <= end_cycle and (r.nmi or not masked)
        ]
        return min(candidates, default=None)

    def acknowledge(self, request: InterruptRequest) -> None:
        self.queue.remove(request)
        self.stats.serviced += 1

    def has_pending(self) -> bool:
        return bool(self.queue)
