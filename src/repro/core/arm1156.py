"""ARM1156T2(F)-S-like core model (paper section 3.1).

A high-end cached core intended for >200 MHz operation.  Features
reproduced for the experiments:

* **caches** on both sides with parity protection
  (:class:`~repro.memory.cache.Cache`), including fault-tolerant recovery
  (section 3.1.3 / experiment E7);
* **fine-grained MPU** consulted on every data access
  (section 3.1.1 / experiment E5);
* **interruptible, re-startable LDM/STM** (section 3.1.2 / experiment E6):
  when an interrupt arrives while a multiple transfer is mid-flight
  (potentially dragging in several cache-line misses), the transfer is
  abandoned, the interrupt is taken, and the instruction re-executes from
  scratch after return.  Loads and ascending stores are idempotent, so
  restart is architecturally safe;
* **non-maskable FIQ** via :class:`~repro.core.vic.VicController` NMI
  requests (section 3.1.2);
* low-latency exception entry (new instructions for exception entry/exit).
"""

from __future__ import annotations

from repro.core.cpu import BaseCpu, return_stack_branch_inline
from repro.core.exceptions import DataAbort, InterruptRecord
from repro.core.vic import VicController
from repro.isa.assembler import Program
from repro.isa.instructions import Instruction
from repro.isa.semantics import Outcome, execute
from repro.memory.cache import Cache
from repro.memory.mpu import Mpu, MpuFault
from repro.memory.bus import SystemBus
from repro.sim.trace import TraceRecorder

_BLOCK_OPS = frozenset({"LDM", "STM", "PUSH", "POP"})


class Arm1156Core(BaseCpu):
    """ARM1156-style timing with caches, MPU, and restartable LDM/STM."""

    name = "arm1156"

    #: low-latency exception entry (the new entry/exit instructions)
    ENTRY_OVERHEAD = 5
    #: cycles charged when a block transfer is abandoned for an interrupt
    ABANDON_PENALTY = 1

    def __init__(self, program: Program, bus: SystemBus,
                 icache: Cache | None = None, dcache: Cache | None = None,
                 vic: VicController | None = None, mpu: Mpu | None = None,
                 interruptible_ldm: bool = True,
                 trace: TraceRecorder | None = None) -> None:
        super().__init__(program, trace)
        self.bus = bus
        self.icache = icache
        self.dcache = dcache
        self.vic = vic or VicController()
        self.mpu = mpu
        self.interruptible_ldm = interruptible_ldm
        self.abandoned_transfers = 0
        self._return_stack: list[tuple[InterruptRecord, int, int]] = []

    @property
    def _irq_queue(self) -> list:
        return self.vic.queue

    # ------------------------------------------------------------------
    # memory paths (through the caches when present)
    # ------------------------------------------------------------------
    def fetch_stalls(self, addr: int, size: int) -> int:
        if self.icache is not None:
            _, stalls = self.icache.read(addr, size, "I")
            return stalls
        return self.bus.fetch_stalls(addr, size)

    @property
    def _bus_fetch(self) -> bool:
        # a plain bus delegation only when the I-cache is absent
        return self.icache is None

    def _fetch_port(self):
        if self.icache is None:
            return self.bus.fetch_stalls
        icache_read = self.icache.read

        def fetch(addr: int, size: int) -> int:
            return icache_read(addr, size, "I")[1]
        return fetch

    def _fetch_thunk(self, address: int, size: int):
        if self.icache is None:
            return self.bus.fetch_thunk(address, size)
        icache_read = self.icache.read

        def thunk(addr=address, size=size):
            return icache_read(addr, size, "I")[1]
        return thunk

    def _data_inline_plan(self) -> str | None:
        if self.dcache is not None:
            return None  # every access goes through the cache model
        return "mpu"

    def _fetch_cache(self):
        # lets the fuser emit the cached fetch inline (hit/miss/parity
        # accounting transcribed from Cache.read) instead of a per
        # instruction closure-call thunk
        return self.icache

    def data_read(self, addr: int, size: int) -> tuple[int, int]:
        self._mpu_check(addr, size, is_write=False)
        port = self.dcache if self.dcache is not None else self.bus
        return port.read(addr, size, "D")

    def data_write(self, addr: int, size: int, value: int) -> int:
        self._mpu_check(addr, size, is_write=True)
        port = self.dcache if self.dcache is not None else self.bus
        return port.write(addr, size, value, "D")

    # Collapsed load/store path (identical statistics and timing).
    def read(self, addr: int, size: int) -> int:
        if self.mpu is not None:
            self._mpu_check(addr, size, is_write=False)
        port = self.dcache
        if port is None:
            port = self.bus
        value, stalls = port.read(addr, size, "D")
        self._data_stalls += stalls
        return value

    def write(self, addr: int, size: int, value: int) -> None:
        if self.mpu is not None:
            self._mpu_check(addr, size, is_write=True)
        port = self.dcache
        if port is None:
            port = self.bus
        self._data_stalls += port.write(addr, size, value, "D")

    def _mpu_check(self, addr: int, size: int, is_write: bool) -> None:
        if self.mpu is None:
            return
        try:
            self.mpu.check(addr, size, is_write)
        except MpuFault as fault:
            raise DataAbort(fault.address, "MPU violation") from fault

    # ------------------------------------------------------------------
    # cycle model: 9-stage, 64-bit datapath, static prediction
    # ------------------------------------------------------------------
    #: the only dynamic cycle model is the early-exit divider:
    #: 1 + min(11, ...) = 12 core cycles worst case, +2 on a taken branch
    WORST_DYNAMIC_CYCLES = 14

    def worst_access_stall(self) -> int:
        """Fold the optional cache ports into the bus's declared bound.

        Fetches go through the I-cache and data through the D-cache when
        configured; either can stall worse than the raw bus (a fill or a
        parity-recovery refill), so the block cycle cap must honour the
        caches' own declared contracts too.
        """
        worst = self.bus.worst_stall
        if self.icache is not None:
            worst = max(worst, self.icache.worst_stall)
        if self.dcache is not None:
            worst = max(worst, self.dcache.worst_stall)
        return worst

    def instruction_cycles(self, ins: Instruction, outcome: Outcome) -> int:
        if outcome.skipped:
            return 1
        m = ins.mnemonic
        cycles = 1
        if outcome.taken:
            cycles += 2  # mispredict/refill on the deeper pipeline
        if m in ("LDR", "LDRB", "LDRH", "LDRSB", "LDRSH"):
            cycles += 1
        elif m in ("LDM", "POP", "STM", "PUSH"):
            # 64-bit datapath moves two registers per cycle
            cycles += (outcome.regs_transferred + 1) // 2
        elif m == "MUL":
            cycles += 1
        elif m in ("MLA", "MLS", "UMULL", "SMULL"):
            cycles += 2
        elif m in ("SDIV", "UDIV"):
            cycles += min(11, 1 + (outcome.div_early_exit + 3) // 4)
        return cycles

    def compile_cycles(self, ins: Instruction):
        """Prebind the ARM1156 cycle cost; divides stay outcome-dependent."""
        m = ins.mnemonic
        if m in ("SDIV", "UDIV"):
            def div_cycles(outcome):
                if outcome.skipped:
                    return 1
                cycles = 1 + min(11, 1 + (outcome.div_early_exit + 3) // 4)
                return cycles + 2 if outcome.taken else cycles
            return div_cycles
        extra = 0
        if m in ("LDR", "LDRB", "LDRH", "LDRSB", "LDRSH"):
            extra = 1
        elif m in ("LDM", "POP", "STM", "PUSH"):
            extra = (len(ins.reglist) + 1) // 2
        elif m == "MUL":
            extra = 1
        elif m in ("MLA", "MLS", "UMULL", "SMULL"):
            extra = 2
        return self._static_cycle_fn(1 + extra, 3 + extra)

    @property
    def _split_block_ops(self) -> bool:
        # Block transfers must head their own superblock so _fastpath_defer
        # can inspect every one before it executes.
        return self.interruptible_ldm

    def _fastpath_defer(self) -> bool:
        # Restartable LDM/STM semantics depend on interrupts arriving
        # mid-transfer: with anything queued (even a far-future assert,
        # whose window position we cannot bound cheaply), block transfers
        # take the reference _step_restartable path so abandonment timing
        # is modelled identically.  Every other instruction only interacts
        # with interrupts at step boundaries, which the fast loop's event
        # horizon reproduces exactly - so unlike the PR 1 engine, a queued
        # future IRQ no longer demotes whole runs to step().
        if not self.interruptible_ldm or not self.vic.queue:
            return False
        ins = self.program.instruction_at(self.regs.values[15])
        return ins is None or ins.mnemonic in _BLOCK_OPS

    # ------------------------------------------------------------------
    # interrupts: classic vectored scheme + NMI + restartable LDM/STM
    # ------------------------------------------------------------------
    def check_interrupts(self) -> bool:
        request = self.vic.pending_at(self.cycles, masked=not self.interrupts_enabled)
        if request is None:
            return False
        self.vic.acknowledge(request)
        self.sleeping = False
        return_addr = self.regs.pc
        banked_lr = self.regs.lr           # LR banks per mode
        self.regs.lr = return_addr
        self.cycles += self.ENTRY_OVERHEAD
        record = InterruptRecord(number=request.number,
                                 assert_cycle=request.assert_cycle,
                                 entry_cycle=self.cycles)
        self.vic.stats.records.append(record)
        self._return_stack.append((record, return_addr, banked_lr))
        self.interrupts_enabled = False
        self.regs.pc = request.handler
        self.trace.emit(self.cycles, "irq", "enter", number=request.number,
                        latency=record.latency)
        return True

    def branch(self, target: int) -> None:
        super().branch(target)
        if self._return_stack and target == self._return_stack[-1][1]:
            record, _, banked_lr = self._return_stack.pop()
            record.exit_cycle = self.cycles
            self.regs.lr = banked_lr
            self.interrupts_enabled = True
            self.trace.emit(self.cycles, "irq", "exit", number=record.number)

    def _branch_inline(self, target: int):
        return return_stack_branch_inline(target)

    # ------------------------------------------------------------------
    # restartable block transfers (experiment E6)
    # ------------------------------------------------------------------
    def step(self) -> bool:
        if (self.interruptible_ldm and not self.halted and not self.sleeping
                and self.vic.has_pending()):
            ins = self.program.instruction_at(self.regs.pc)
            if ins is not None and ins.mnemonic in _BLOCK_OPS:
                return self._step_restartable()
        return super().step()

    def _step_restartable(self) -> bool:
        # service anything already pending first (as the base loop would)
        self.check_interrupts()
        if self.halted:
            return False
        pc = self.regs.pc
        ins = self.program.instruction_at(pc)
        if ins is None or ins.mnemonic not in _BLOCK_OPS:
            return super().step()
        if 15 in ins.reglist:
            # PC-popping transfers are NON-restartable: popping the PC
            # runs the interrupt-return unwind in branch() (return-stack
            # pop, I-bit restore), a side effect that cannot be rolled
            # back by the register snapshot below.  The transfer commits
            # atomically and a mid-flight assert is taken at the next
            # instruction boundary instead - the semantics pinned by
            # test_arm1156_pop_pc_is_not_restartable.
            return self._commit_step(pc, ins)
        # snapshot architectural state so the transfer can be abandoned
        regs_snapshot = self.regs.snapshot()
        apsr_snapshot = self.apsr.copy()
        it_snapshot = list(self._it_queue)
        halted_snapshot = self.halted
        self.current_address = pc
        self.current_size = ins.size
        fetch = self.fetch_stalls(pc, ins.size)
        self._data_stalls = 0
        condition = self._next_condition(ins)
        outcome = execute(self, ins, condition)
        cost = self.instruction_cycles(ins, outcome) + fetch + self._data_stalls
        start = self.cycles
        arrival = self.vic.earliest_assert_in(start, start + cost,
                                              masked=not self.interrupts_enabled)
        if arrival is None:
            # no interrupt landed mid-transfer: commit normally
            self.cycles += cost
            self.instructions_executed += 1
            if outcome.taken:
                self.branches_taken += 1
            if not outcome.taken and not self.halted:
                self.regs.pc = pc + ins.size
            return not self.halted
        # abandon: roll back and leave PC pointing at the transfer so it
        # restarts from scratch after the interrupt returns
        self.regs.values[:] = list(regs_snapshot)
        self.apsr = apsr_snapshot
        self._it_queue = it_snapshot
        self.halted = halted_snapshot
        self.abandoned_transfers += 1
        self.cycles = arrival + self.ABANDON_PENALTY
        self.trace.emit(self.cycles, "ldm", "abandoned", pc=pc, cost=cost)
        return True

    def _commit_step(self, pc: int, ins) -> bool:
        """Execute one instruction unconditionally (no abandonment window).

        The poll already happened in :meth:`_step_restartable`; this is
        :meth:`BaseCpu.step`'s commit path for a block transfer that must
        run atomically (PC in the register list)."""
        self.current_address = pc
        self.current_size = ins.size
        fetch = self.fetch_stalls(pc, ins.size)
        self._data_stalls = 0
        condition = self._next_condition(ins)
        outcome = execute(self, ins, condition)
        self.cycles += self.instruction_cycles(ins, outcome) + fetch + self._data_stalls
        self.instructions_executed += 1
        if outcome.skipped:
            self.instructions_skipped += 1
        if outcome.taken:
            self.branches_taken += 1
        if not outcome.taken and not self.halted:
            self.regs.pc = pc + ins.size
        return not self.halted
