"""In-vehicle network substrate: CAN frames, bus simulation, analysis,
and the distributed virtual-multi-core allocation of the paper's vision."""

from repro.network.can_analysis import (
    BusAnalysis,
    MessageResponse,
    MessageSpec,
    bus_utilisation,
    can_response_times,
)
from repro.network.can_bus import CanBus, DeliveryRecord, PeriodicSender
from repro.network.can_frame import (
    CanFrame,
    crc15,
    destuff_bits,
    parse_frame,
    stuff_bits,
    worst_case_frame_bits,
)
from repro.network.lin import (
    LinDelivery,
    LinMaster,
    ScheduleSlot,
    check_protected_id,
    classic_checksum,
    enhanced_checksum,
    frame_bits,
    protected_id,
)
from repro.network.distributed import (
    DistributedTask,
    Ecu,
    Placement,
    SystemAnalysis,
    allocate_tasks,
    analyse_system,
    count_binaries,
    harmonize,
    tasks_from_wcet,
)

__all__ = [
    "BusAnalysis", "MessageResponse", "MessageSpec",
    "bus_utilisation", "can_response_times",
    "CanBus", "DeliveryRecord", "PeriodicSender",
    "CanFrame", "crc15", "destuff_bits", "parse_frame", "stuff_bits",
    "worst_case_frame_bits",
    "DistributedTask", "Ecu", "Placement", "SystemAnalysis",
    "allocate_tasks", "analyse_system", "count_binaries", "harmonize",
    "tasks_from_wcet",
    "LinDelivery", "LinMaster", "ScheduleSlot", "check_protected_id",
    "classic_checksum", "enhanced_checksum", "frame_bits", "protected_id",
]
