"""LIN (Local Interconnect Network): the low-cost body-electronics sub-bus.

The paper's motivating examples - electric windows, seat control, mirror
folding - are exactly the nodes that hang off LIN behind a CAN gateway.
LIN is a single-master, schedule-table-driven serial bus: the master
broadcasts a frame *header* (break + sync + protected identifier) per
schedule slot, and whichever node owns that identifier supplies the
*response* (1-8 data bytes + checksum).  There is no arbitration, so
timing is fully deterministic: worst-case latency is read straight off
the schedule table.

Modelled here: protected-identifier encoding (two parity bits), the
classic and enhanced checksums, frame timing at a given baud rate, a
schedule-table master with slave response registration, and the exact
latency bound a designer would compute.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.events import EventScheduler

#: header = 14 bit-times break + 10 sync + 10 PID (8N1 framing per byte)
HEADER_BITS = 34
#: each response byte is 10 bit-times (start + 8 data + stop)
BITS_PER_BYTE = 10
#: LIN 2.x allows 40% inter-byte space; we model the nominal frame


def protected_id(frame_id: int) -> int:
    """Append the two parity bits to a 6-bit frame identifier."""
    if not 0 <= frame_id <= 0x3F:
        raise ValueError(f"LIN frame id {frame_id:#x} exceeds 6 bits")
    bit = lambda n: (frame_id >> n) & 1  # noqa: E731
    p0 = bit(0) ^ bit(1) ^ bit(2) ^ bit(4)
    p1 = (~(bit(1) ^ bit(3) ^ bit(4) ^ bit(5))) & 1
    return frame_id | (p0 << 6) | (p1 << 7)


def check_protected_id(pid: int) -> int:
    """Validate parity; returns the bare 6-bit id or raises ValueError."""
    frame_id = pid & 0x3F
    if protected_id(frame_id) != pid:
        raise ValueError(f"PID parity error in {pid:#04x}")
    return frame_id


def classic_checksum(data: bytes) -> int:
    """LIN 1.x checksum: inverted sum-with-carry over the data bytes."""
    total = 0
    for byte in data:
        total += byte
        if total > 0xFF:
            total -= 0xFF
    return (~total) & 0xFF


def enhanced_checksum(pid: int, data: bytes) -> int:
    """LIN 2.x checksum: also covers the protected identifier."""
    total = pid
    for byte in data:
        total += byte
        if total > 0xFF:
            total -= 0xFF
    return (~total) & 0xFF


def frame_bits(payload_bytes: int) -> int:
    """Nominal bit-times for a full frame (header + response + checksum)."""
    if not 0 <= payload_bytes <= 8:
        raise ValueError("LIN payload is 0..8 bytes")
    return HEADER_BITS + (payload_bytes + 1) * BITS_PER_BYTE


@dataclass(frozen=True)
class ScheduleSlot:
    """One entry of the master's schedule table."""

    frame_id: int
    payload_bytes: int
    slot_us: int  # allotted slot time; must cover the frame

    def frame_time_us(self, baud: int) -> int:
        return -(-frame_bits(self.payload_bytes) * 1_000_000 // baud)


@dataclass
class LinDelivery:
    frame_id: int
    data: bytes
    checksum_ok: bool
    at_us: int


class LinMaster:
    """Schedule-table master plus registered slave responses.

    Slaves are callables ``() -> bytes`` keyed by frame id; a missing
    slave yields a no-response slot (counted, as a bus monitor would).
    """

    def __init__(self, schedule: list[ScheduleSlot], baud: int = 19_200,
                 scheduler: EventScheduler | None = None,
                 enhanced: bool = True) -> None:
        total = sum(slot.slot_us for slot in schedule)
        for slot in schedule:
            if slot.frame_time_us(baud) > slot.slot_us:
                raise ValueError(
                    f"slot for id {slot.frame_id:#x} too short: needs "
                    f"{slot.frame_time_us(baud)}us, has {slot.slot_us}us")
        self.schedule = schedule
        self.cycle_us = total
        self.baud = baud
        self.enhanced = enhanced
        self.scheduler = scheduler or EventScheduler()
        self.slaves: dict[int, object] = {}
        self.deliveries: list[LinDelivery] = []
        self.listeners: list = []   # callables(delivery), at frame completion
        self.no_response: int = 0
        #: fault hook: callable ``(frame_id, now_us) -> None|"drop"|"stuck"``
        #: consulted per slot.  ``"drop"`` models a dead slave (header goes
        #: out, no response - counted in ``no_response``); ``"stuck"``
        #: replays the slave's previous response bytes (a wedged
        #: transceiver repeating its last buffer).
        self.slot_fault = None
        self._last_data: dict[int, bytes] = {}
        self._position = 0

    def attach_slave(self, frame_id: int, responder) -> None:
        check_protected_id(protected_id(frame_id))  # validates range
        self.slaves[frame_id] = responder

    def subscribe(self, callback) -> None:
        """Register a listener fired *at the frame's completion time* for
        every delivered frame - the controller-facing bus hook the
        co-simulation's LIN cells receive through."""
        self.listeners.append(callback)

    # ------------------------------------------------------------------
    def start(self, offset_us: int = 0) -> None:
        self.scheduler.at(self.scheduler.now + offset_us, self._run_slot)

    def _run_slot(self) -> None:
        slot = self.schedule[self._position]
        self._position = (self._position + 1) % len(self.schedule)
        responder = self.slaves.get(slot.frame_id)
        finish = self.scheduler.now + slot.frame_time_us(self.baud)
        fault = (self.slot_fault(slot.frame_id, self.scheduler.now)
                 if self.slot_fault is not None else None)
        if fault == "drop":
            responder = None
        if responder is None:
            self.no_response += 1
        elif fault == "stuck":
            stale = self._last_data.get(slot.frame_id)
            if stale is None:
                self.no_response += 1   # nothing latched to repeat yet
            else:
                self._deliver(slot, stale, finish)
        else:
            data = bytes(responder())[:slot.payload_bytes]
            self._last_data[slot.frame_id] = data
            self._deliver(slot, data, finish)
        self.scheduler.after(slot.slot_us, self._run_slot)

    def _deliver(self, slot: ScheduleSlot, data: bytes, finish: int) -> None:
        pid = protected_id(slot.frame_id)
        checksum = (enhanced_checksum(pid, data) if self.enhanced
                    else classic_checksum(data))
        verify = (enhanced_checksum(pid, data) if self.enhanced
                  else classic_checksum(data))
        delivery = LinDelivery(
            frame_id=slot.frame_id, data=data,
            checksum_ok=checksum == verify, at_us=finish)
        self.deliveries.append(delivery)
        if self.listeners:
            # receivers see the frame when its last byte lands on the
            # wire, not at the slot's header time
            self.scheduler.at(finish, lambda d=delivery: [
                listener(d) for listener in self.listeners])

    # ------------------------------------------------------------------
    def worst_case_latency_us(self, frame_id: int) -> int:
        """Deterministic bound: a signal generated just after its slot
        waits one full cycle, then its own slot completes the transfer."""
        for slot in self.schedule:
            if slot.frame_id == frame_id:
                return self.cycle_us + slot.frame_time_us(self.baud)
        raise KeyError(f"frame {frame_id:#x} not in schedule")

    def utilisation(self) -> float:
        busy = sum(slot.frame_time_us(self.baud) for slot in self.schedule)
        return busy / self.cycle_us if self.cycle_us else 0.0
