"""The paper's platform vision: distributed ECUs as a virtual multi-core.

Sections 1 and 4 argue that harmonizing the instruction set across all of
a vehicle's processor nodes lets the distributed network be "harnessed as
a single compute resource": any task can be placed on any node with spare
capacity, and one compiled binary serves the whole fleet of nodes.

This module makes that claim measurable:

* :func:`allocate_tasks` - first-fit-decreasing placement of periodic
  tasks onto ECUs, constrained by *binary compatibility*: a task can only
  run on a node whose ISA it has been built for.
* With ``harmonized ISA`` every task runs everywhere (one binary); with a
  heterogeneous fleet each task carries builds for a subset of ISAs and
  placement is restricted - the experiment E11 comparison.
* Placed systems are then checked end-to-end: per-ECU fixed-priority
  response-time analysis plus CAN bus analysis for the inter-ECU signals.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.network.can_analysis import MessageSpec, can_response_times
from repro.rtos.analysis import AnalysedTask, response_time_analysis


@dataclass(frozen=True)
class DistributedTask:
    """A periodic task that may be placed on any compatible ECU."""

    name: str
    wcet_us: int               # at reference speed 1.0
    period_us: int
    binaries: frozenset[str]   # ISAs this task has been compiled for
    produces: tuple[MessageSpec, ...] = ()  # signals sent if placed remotely

    @property
    def utilisation(self) -> float:
        return self.wcet_us / self.period_us


@dataclass(frozen=True)
class Ecu:
    """One processor node on the vehicle network."""

    name: str
    isa: str
    speed: float = 1.0         # relative to the reference core

    def scaled_wcet(self, wcet_us: int) -> int:
        return max(int(round(wcet_us / self.speed)), 1)


@dataclass
class Placement:
    """Result of an allocation attempt."""

    assignments: dict[str, str] = field(default_factory=dict)  # task -> ecu
    unplaced: list[str] = field(default_factory=list)
    binaries_built: int = 0

    @property
    def fully_placed(self) -> bool:
        return not self.unplaced


def allocate_tasks(tasks: list[DistributedTask], ecus: list[Ecu],
                   utilisation_cap: float = 0.69) -> Placement:
    """First-fit decreasing by utilisation, honouring ISA compatibility.

    ``utilisation_cap`` defaults to the Liu-Layland-ish guard under which
    rate-monotonic sets are (almost always) schedulable; the final word is
    the per-ECU response-time analysis in :func:`analyse_system`.
    """
    placement = Placement()
    load: dict[str, float] = {ecu.name: 0.0 for ecu in ecus}
    for task in sorted(tasks, key=lambda t: -t.utilisation):
        placed = False
        for ecu in ecus:
            if ecu.isa not in task.binaries:
                continue
            scaled = ecu.scaled_wcet(task.wcet_us) / task.period_us
            if load[ecu.name] + scaled <= utilisation_cap:
                load[ecu.name] += scaled
                placement.assignments[task.name] = ecu.name
                placed = True
                break
        if not placed:
            placement.unplaced.append(task.name)
    placement.binaries_built = sum(len(t.binaries) for t in tasks)
    return placement


@dataclass
class SystemAnalysis:
    placement: Placement
    ecu_schedulable: dict[str, bool] = field(default_factory=dict)
    bus_schedulable: bool = True
    bus_utilisation: float = 0.0

    @property
    def schedulable(self) -> bool:
        return (self.placement.fully_placed
                and all(self.ecu_schedulable.values())
                and self.bus_schedulable)


def analyse_system(tasks: list[DistributedTask], ecus: list[Ecu],
                   placement: Placement, bitrate_bps: int = 500_000) -> SystemAnalysis:
    """Full check: every ECU's task set plus the bus traffic."""
    analysis = SystemAnalysis(placement=placement)
    by_name = {t.name: t for t in tasks}
    ecu_by_name = {e.name: e for e in ecus}
    for ecu in ecus:
        local = [by_name[t] for t, e in placement.assignments.items() if e == ecu.name]
        if not local:
            analysis.ecu_schedulable[ecu.name] = True
            continue
        analysed = [
            AnalysedTask(name=t.name, wcet=ecu_by_name[ecu.name].scaled_wcet(t.wcet_us),
                         period=t.period_us)
            for t in local
        ]
        analysis.ecu_schedulable[ecu.name] = response_time_analysis(analysed).schedulable
    # all produced signals of placed tasks ride the single bus
    signals: list[MessageSpec] = []
    for task_name in placement.assignments:
        signals.extend(by_name[task_name].produces)
    if signals:
        bus = can_response_times(signals, bitrate_bps=bitrate_bps)
        analysis.bus_schedulable = bus.schedulable
        analysis.bus_utilisation = bus.utilisation
    return analysis


def harmonize(tasks: list[DistributedTask], isa: str) -> list[DistributedTask]:
    """The paper's proposal: one ISA everywhere -> one binary per task."""
    return [
        DistributedTask(name=t.name, wcet_us=t.wcet_us, period_us=t.period_us,
                        binaries=frozenset({isa}), produces=t.produces)
        for t in tasks
    ]


def count_binaries(tasks: list[DistributedTask]) -> int:
    """Total compiled artefacts the fleet must maintain."""
    return sum(len(t.binaries) for t in tasks)


def tasks_from_wcet(estimates, periods_us: dict[str, int],
                    reference_mhz: int = 80,
                    produces: dict[str, tuple[MessageSpec, ...]] | None = None,
                    ) -> list[DistributedTask]:
    """Build placement tasks from *executed* WCET measurements.

    ``estimates`` are :class:`~repro.rtos.wcet.WcetEstimate`-shaped
    records (``workload``, ``isa``, margin-padded ``wcet`` in cycles, or a
    precomputed ``wcet_us``): the bridge that replaces assumed
    ``DistributedTask.wcet_us`` numbers with measured kernel cycles, so
    placement experiments (:func:`allocate_tasks` / :func:`analyse_system`)
    rest on executed rather than pencilled-in timing.  ``periods_us`` maps
    workload name to its activation period; ``reference_mhz`` converts
    cycles at the measurement core's clock into the reference-speed
    microseconds the ECU model scales from.
    """
    tasks = []
    for estimate in estimates:
        name = estimate.workload
        if name not in periods_us:
            raise KeyError(f"no period for measured workload {name!r}")
        wcet_us = getattr(estimate, "wcet_us", None)
        if wcet_us is None:
            wcet_us = -(-estimate.wcet // reference_mhz)
        tasks.append(DistributedTask(
            name=name, wcet_us=max(int(wcet_us), 1),
            period_us=periods_us[name],
            binaries=frozenset({estimate.isa}),
            produces=(produces or {}).get(name, ()),
        ))
    return tasks
