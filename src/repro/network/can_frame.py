"""CAN 2.0A frame construction: bit layout, CRC-15, bit stuffing.

The paper's platform vision (sections 1 and 4) rests on the in-vehicle
network; CAN is the automotive bus of the era.  Frame timing - including
the worst-case stuffing overhead - feeds both the bus simulator and the
schedulability analysis.
"""

from __future__ import annotations

from dataclasses import dataclass

CRC15_POLY = 0x4599  # x^15 + x^14 + x^10 + x^8 + x^7 + x^4 + x^3 + 1


def crc15(bits: list[int]) -> int:
    """CAN CRC-15 over a bit sequence."""
    crc = 0
    for bit in bits:
        crc_next = ((crc >> 14) & 1) ^ bit
        crc = (crc << 1) & 0x7FFF
        if crc_next:
            crc ^= CRC15_POLY
    return crc


def stuff_bits(bits: list[int]) -> list[int]:
    """Insert a complementary bit after five equal consecutive bits."""
    out: list[int] = []
    run_value = None
    run_length = 0
    for bit in bits:
        out.append(bit)
        if bit == run_value:
            run_length += 1
        else:
            run_value = bit
            run_length = 1
        if run_length == 5:
            out.append(bit ^ 1)
            run_value = bit ^ 1
            run_length = 1
    return out


def destuff_bits(bits: list[int]) -> list[int]:
    """Inverse of :func:`stuff_bits`."""
    out: list[int] = []
    run_value = None
    run_length = 0
    skip_next = False
    for bit in bits:
        if skip_next:
            skip_next = False
            run_value = bit
            run_length = 1
            continue
        out.append(bit)
        if bit == run_value:
            run_length += 1
        else:
            run_value = bit
            run_length = 1
        if run_length == 5:
            skip_next = True
    return out


@dataclass(frozen=True)
class CanFrame:
    """A standard (11-bit identifier) CAN data frame."""

    can_id: int
    data: bytes

    def __post_init__(self) -> None:
        if not 0 <= self.can_id <= 0x7FF:
            raise ValueError(f"identifier {self.can_id:#x} exceeds 11 bits")
        if len(self.data) > 8:
            raise ValueError("CAN data field is at most 8 bytes")

    @property
    def dlc(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------
    def header_and_data_bits(self) -> list[int]:
        """SOF through the data field (the CRC-covered, stuffed region)."""
        bits = [0]  # SOF (dominant)
        bits += [(self.can_id >> i) & 1 for i in range(10, -1, -1)]
        bits += [0]        # RTR (data frame)
        bits += [0, 0]     # IDE, r0
        bits += [(self.dlc >> i) & 1 for i in range(3, -1, -1)]
        for byte in self.data:
            bits += [(byte >> i) & 1 for i in range(7, -1, -1)]
        return bits

    def bits_on_wire(self) -> list[int]:
        """The full frame as transmitted (stuffed + fixed-form fields)."""
        covered = self.header_and_data_bits()
        crc = crc15(covered)
        covered_plus_crc = covered + [(crc >> i) & 1 for i in range(14, -1, -1)]
        stuffed = stuff_bits(covered_plus_crc)
        # CRC delimiter, ACK slot, ACK delimiter, EOF(7), IFS(3): fixed form
        tail = [1, 0, 1] + [1] * 7 + [1] * 3
        return stuffed + tail

    @property
    def wire_bits(self) -> int:
        return len(self.bits_on_wire())

    def transmission_time(self, bitrate_bps: int) -> float:
        """Seconds to transmit at the given bit rate."""
        return self.wire_bits / bitrate_bps


def worst_case_frame_bits(payload_bytes: int) -> int:
    """Analytic worst-case wire bits for an n-byte standard frame.

    The classic bound (Davis et al.): 8n + 47 bits including the 3-bit
    interframe space, of which 34 + 8n are subject to stuffing, adding at
    most floor((34 + 8n - 1) / 4) stuff bits - 135 bits for n = 8.
    """
    if not 0 <= payload_bytes <= 8:
        raise ValueError("payload must be 0..8 bytes")
    base = 8 * payload_bytes + 47
    stuffable = 34 + 8 * payload_bytes
    return base + (stuffable - 1) // 4


def parse_frame(bits: list[int]) -> CanFrame:
    """Decode wire bits back into a frame (validates the CRC)."""
    # strip fixed-form tail: delimiter+ack+ackdelim (3) + EOF (7) + IFS (3)
    stuffed = bits[:-13]
    flat = destuff_bits(stuffed)
    if flat[0] != 0:
        raise ValueError("missing SOF")
    can_id = 0
    for bit in flat[1:12]:
        can_id = (can_id << 1) | bit
    dlc = 0
    for bit in flat[15:19]:
        dlc = (dlc << 1) | bit
    data = bytearray()
    offset = 19
    for _ in range(dlc):
        byte = 0
        for bit in flat[offset:offset + 8]:
            byte = (byte << 1) | bit
        data.append(byte)
        offset += 8
    crc_received = 0
    for bit in flat[offset:offset + 15]:
        crc_received = (crc_received << 1) | bit
    frame = CanFrame(can_id=can_id, data=bytes(data))
    expected = crc15(frame.header_and_data_bits())
    if crc_received != expected:
        raise ValueError(f"CRC mismatch: got {crc_received:#x}, want {expected:#x}")
    return frame
