"""Worst-case response-time analysis for CAN messages.

The classic fixed-priority non-preemptive analysis (Tindell/Burns, with
the Davis et al. 2007 corrections): a message's worst case is release
jitter, plus a busy-period queueing delay (blocking by at most one
lower-priority frame already on the wire plus interference from every
higher-priority stream), plus its own transmission time.

Identifiers *are* priorities on CAN (lower wins), which is why the
analysis indexes by identifier.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.network.can_frame import worst_case_frame_bits


@dataclass(frozen=True)
class MessageSpec:
    """A periodic CAN message stream."""

    can_id: int
    payload_bytes: int
    period_us: int
    jitter_us: int = 0
    deadline_us: int | None = None

    @property
    def effective_deadline(self) -> int:
        return self.deadline_us if self.deadline_us is not None else self.period_us

    def transmission_us(self, bitrate_bps: int) -> int:
        bits = worst_case_frame_bits(self.payload_bytes)
        return -(-bits * 1_000_000 // bitrate_bps)


@dataclass
class MessageResponse:
    can_id: int
    response_us: int | None
    blocking_us: int
    deadline_us: int

    @property
    def schedulable(self) -> bool:
        return self.response_us is not None and self.response_us <= self.deadline_us


@dataclass
class BusAnalysis:
    bitrate_bps: int
    messages: list[MessageResponse] = field(default_factory=list)
    utilisation: float = 0.0

    @property
    def schedulable(self) -> bool:
        return all(m.schedulable for m in self.messages)

    def response_of(self, can_id: int) -> MessageResponse:
        for message in self.messages:
            if message.can_id == can_id:
                return message
        raise KeyError(can_id)


def bus_utilisation(specs: list[MessageSpec], bitrate_bps: int) -> float:
    return sum(s.transmission_us(bitrate_bps) / s.period_us for s in specs)


def can_response_times(specs: list[MessageSpec], bitrate_bps: int = 500_000,
                       limit_factor: int = 100) -> BusAnalysis:
    """Worst-case response time per message stream."""
    ids = [s.can_id for s in specs]
    if len(set(ids)) != len(ids):
        raise ValueError("CAN identifiers must be unique")
    tau_bit = max(1_000_000 // bitrate_bps, 1)  # one bit time, in us
    analysis = BusAnalysis(bitrate_bps=bitrate_bps,
                           utilisation=bus_utilisation(specs, bitrate_bps))
    for spec in specs:
        own = spec.transmission_us(bitrate_bps)
        lower = [s for s in specs if s.can_id > spec.can_id]
        higher = [s for s in specs if s.can_id < spec.can_id]
        blocking = max([s.transmission_us(bitrate_bps) for s in lower], default=0)
        limit = limit_factor * spec.effective_deadline + 1
        queueing = blocking
        response = None
        while True:
            interference = sum(
                math.ceil((queueing + h.jitter_us + tau_bit) / h.period_us)
                * h.transmission_us(bitrate_bps)
                for h in higher
            )
            next_queueing = blocking + interference
            if next_queueing == queueing:
                response = spec.jitter_us + queueing + own
                break
            if next_queueing + own > limit:
                break
            queueing = next_queueing
        analysis.messages.append(MessageResponse(
            can_id=spec.can_id, response_us=response,
            blocking_us=blocking, deadline_us=spec.effective_deadline))
    analysis.messages.sort(key=lambda m: m.can_id)
    return analysis
