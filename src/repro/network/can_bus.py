"""Discrete-event CAN bus: identifier arbitration, queueing, error retries.

Time is in microseconds.  Transmission is non-preemptive: once a frame
wins arbitration it occupies the bus for its full wire time; pending
frames re-arbitrate at the next bus-idle point, lowest identifier first -
exactly the fixed-priority non-preemptive model the schedulability
analysis in :mod:`repro.network.can_analysis` assumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.network.can_frame import CanFrame
from repro.sim.events import EventScheduler
from repro.sim.rng import DeterministicRng
from repro.sim.trace import TraceRecorder

#: error frame + retransmission gap, in bit times (form error worst case)
ERROR_FRAME_BITS = 31


@dataclass
class QueuedMessage:
    frame: CanFrame
    queued_at: int
    node: str
    attempts: int = 0


@dataclass
class DeliveryRecord:
    can_id: int
    node: str
    queued_at: int
    completed_at: int
    attempts: int

    @property
    def response_time(self) -> int:
        return self.completed_at - self.queued_at


class CanBus:
    """Single shared bus with ideal arbitration and optional bit errors."""

    def __init__(self, scheduler: EventScheduler | None = None,
                 bitrate_bps: int = 500_000,
                 error_rate: float = 0.0,
                 rng: DeterministicRng | None = None,
                 trace: TraceRecorder | None = None) -> None:
        self.scheduler = scheduler or EventScheduler()
        self.bitrate = bitrate_bps
        self.error_rate = error_rate
        self.rng = rng or DeterministicRng(0)
        # not "trace or ...": an empty TraceRecorder is falsy (__len__)
        self.trace = trace if trace is not None else TraceRecorder(enabled=False)
        self.pending: list[QueuedMessage] = []
        self.busy_until = 0
        self.transmitting: QueuedMessage | None = None
        self.deliveries: list[DeliveryRecord] = []
        self.listeners: list = []   # callables(frame, record)
        self.errors_injected = 0
        self.busy_us = 0

    # ------------------------------------------------------------------
    def bit_time_us(self, bits: int) -> int:
        """Microseconds (rounded up) for a number of bit times."""
        return -(-bits * 1_000_000 // self.bitrate)

    def submit(self, frame: CanFrame, node: str = "?") -> QueuedMessage:
        """Queue a frame for transmission (from a node's TX mailbox)."""
        message = QueuedMessage(frame=frame, queued_at=self.scheduler.now, node=node)
        self.pending.append(message)
        self.trace.emit(self.scheduler.now, "can", "queued",
                        can_id=frame.can_id, node=node)
        self._try_start()
        return message

    def subscribe(self, callback) -> None:
        """Register a listener called on every successful delivery."""
        self.listeners.append(callback)

    # ------------------------------------------------------------------
    def _try_start(self) -> None:
        if self.transmitting is not None or not self.pending:
            return
        if self.scheduler.now < self.busy_until:
            self.scheduler.at(self.busy_until, self._try_start)
            return
        # arbitration: lowest identifier wins (FIFO among equal IDs)
        winner = min(self.pending, key=lambda m: (m.frame.can_id, m.queued_at))
        self.pending.remove(winner)
        self.transmitting = winner
        winner.attempts += 1
        duration = self.bit_time_us(winner.frame.wire_bits)
        corrupted = self.error_rate > 0 and self.rng.random() < self.error_rate
        if corrupted:
            self.errors_injected += 1
            # error detected mid-frame: error frame + retransmission
            penalty = self.bit_time_us(ERROR_FRAME_BITS)
            self.scheduler.after(duration // 2 + penalty,
                                 lambda: self._transmission_failed(winner))
        else:
            self.scheduler.after(duration, lambda: self._transmission_done(winner))
        self.trace.emit(self.scheduler.now, "can", "arbitration_won",
                        can_id=winner.frame.can_id, attempt=winner.attempts)

    def _transmission_failed(self, message: QueuedMessage) -> None:
        self.transmitting = None
        self.busy_until = self.scheduler.now
        self.pending.append(message)  # automatic retransmission
        self.trace.emit(self.scheduler.now, "can", "error_frame",
                        can_id=message.frame.can_id)
        self._try_start()

    def _transmission_done(self, message: QueuedMessage) -> None:
        self.transmitting = None
        self.busy_until = self.scheduler.now
        self.busy_us += self.bit_time_us(message.frame.wire_bits)
        record = DeliveryRecord(can_id=message.frame.can_id, node=message.node,
                                queued_at=message.queued_at,
                                completed_at=self.scheduler.now,
                                attempts=message.attempts)
        self.deliveries.append(record)
        self.trace.emit(self.scheduler.now, "can", "delivered",
                        can_id=message.frame.can_id,
                        response=record.response_time)
        for listener in self.listeners:
            listener(message.frame, record)
        self._try_start()

    # ------------------------------------------------------------------
    def worst_response(self, can_id: int) -> int:
        times = [d.response_time for d in self.deliveries if d.can_id == can_id]
        return max(times, default=0)

    def utilisation(self, horizon_us: int) -> float:
        """Fraction of the horizon the bus spent transmitting."""
        return min(self.busy_us / horizon_us, 1.0) if horizon_us else 0.0


@dataclass
class PeriodicSender:
    """A node queueing one frame every period (body-electronics style)."""

    bus: CanBus
    can_id: int
    payload: bytes
    period_us: int
    node: str = "ecu"
    jitter_us: int = 0
    rng: DeterministicRng | None = None
    sent: int = field(default=0)

    def start(self, offset_us: int = 0) -> None:
        self.bus.scheduler.at(self.bus.scheduler.now + offset_us, self._fire)

    def _fire(self) -> None:
        delay = 0
        if self.jitter_us and self.rng is not None:
            delay = self.rng.randint(0, self.jitter_us)
        self.bus.scheduler.after(delay, self._send)
        self.bus.scheduler.after(self.period_us, self._fire)

    def _send(self) -> None:
        self.sent += 1
        self.bus.submit(CanFrame(self.can_id, self.payload), node=self.node)
