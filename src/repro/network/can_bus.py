"""Discrete-event CAN bus: arbitration, queueing, error confinement.

Time is in microseconds.  Transmission is non-preemptive: once a frame
wins arbitration it occupies the bus for its full wire time; pending
frames re-arbitrate at the next bus-idle point, lowest identifier first -
exactly the fixed-priority non-preemptive model the schedulability
analysis in :mod:`repro.network.can_analysis` assumes.

Error confinement (CAN 2.0 fault confinement, OSEK-era timing)
--------------------------------------------------------------
Every transmitting node carries the classic error counters: a transmit
error raises its TEC by 8 (and every other known node's REC by 1), a
successful transmission lowers TEC by 1 (and the other nodes' RECs).
Either counter reaching 128 moves the node to *error-passive*: it still
transmits, but waits a suspend-transmission window (8 bit times) before
re-entering arbitration, so healthy nodes get the bus first.  A TEC of
256 takes the node *bus-off*: its in-flight and queued frames are parked,
and the node rejoins - counters reset, parked frames re-queued with their
original queue times - after the fixed recovery window of 128 x 11
recessive bit times.  All consequences of an injected error are therefore
bounded and specified, not just "some retries happen": the fault-campaign
layer (:mod:`repro.vehicle.faults`) asserts them per cell.

Errors come from two deterministic sources: the per-frame ``error_rate``
draw (from the bus's own RNG stream) and *forced error windows*
(:meth:`CanBus.force_error_window`), which fail every attempt a node
starts inside a time window - the bus-off-storm fault primitive.

Accounting is coherent by construction: every injected error is counted
on ``errors_injected``, on the suffering message (surfacing in its
:class:`DeliveryRecord` as ``errors`` and ``retry_latency_us``), and as
an ``error_frame`` trace event; :meth:`CanBus.error_accounting` checks
the three agree, and frame-conservation checks fold it in.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.network.can_frame import CanFrame
from repro.sim.events import EventScheduler
from repro.sim.rng import DeterministicRng
from repro.sim.trace import TraceRecorder

#: error frame + retransmission gap, in bit times (form error worst case)
ERROR_FRAME_BITS = 31

#: TEC/REC threshold for the error-active -> error-passive transition
ERROR_PASSIVE_THRESHOLD = 128

#: TEC threshold for bus-off
BUS_OFF_THRESHOLD = 256

#: TEC increment per transmit error (CAN 2.0 rule 3)
TEC_ERROR_INCREMENT = 8

#: bus-off recovery: 128 occurrences of 11 recessive bits, modelled as a
#: fixed window (a quiet OSEK-era bus makes the occurrences back-to-back)
BUS_OFF_RECOVERY_BITS = 128 * 11

#: suspend transmission: an error-passive node waits this long after a
#: transmission (or an error flag) before re-entering arbitration
SUSPEND_TRANSMISSION_BITS = 8

ERROR_ACTIVE = "error-active"
ERROR_PASSIVE = "error-passive"
BUS_OFF = "bus-off"


@dataclass
class QueuedMessage:
    frame: CanFrame
    queued_at: int
    node: str
    attempts: int = 0
    errors: int = 0             # error frames this message suffered
    error_latency_us: int = 0   # bus time its failed attempts occupied


@dataclass
class DeliveryRecord:
    can_id: int
    node: str
    queued_at: int
    completed_at: int
    attempts: int
    errors: int = 0
    retry_latency_us: int = 0

    @property
    def response_time(self) -> int:
        return self.completed_at - self.queued_at


@dataclass
class NodeErrorState:
    """Per-node fault-confinement state (TEC/REC and the derived mode)."""

    node: str
    tec: int = 0
    rec: int = 0
    state: str = ERROR_ACTIVE
    suspend_until_us: int = 0
    bus_off_events: int = 0
    #: (went_off_at_us, recovered_at_us) per bus-off episode
    bus_off_log: list = field(default_factory=list)
    #: frames parked while the node is bus-off (original queue times kept)
    held: list = field(default_factory=list)

    @property
    def error_passive(self) -> bool:
        return self.state == ERROR_PASSIVE

    @property
    def bus_off(self) -> bool:
        return self.state == BUS_OFF


class CanBus:
    """Single shared bus with ideal arbitration and fault confinement."""

    def __init__(self, scheduler: EventScheduler | None = None,
                 bitrate_bps: int = 500_000,
                 error_rate: float = 0.0,
                 rng: DeterministicRng | None = None,
                 trace: TraceRecorder | None = None) -> None:
        self.scheduler = scheduler or EventScheduler()
        self.bitrate = bitrate_bps
        self.error_rate = error_rate
        self.rng = rng or DeterministicRng(0)
        # not "trace or ...": an empty TraceRecorder is falsy (__len__)
        self.trace = trace if trace is not None else TraceRecorder(enabled=False)
        self.pending: list[QueuedMessage] = []
        self.busy_until = 0
        self.transmitting: QueuedMessage | None = None
        self.deliveries: list[DeliveryRecord] = []
        self.listeners: list = []   # callables(frame, record)
        self.errors_injected = 0
        self.busy_us = 0
        self.frames_injected = 0    # fault-layer submissions (no controller)
        self._states: dict[str, NodeErrorState] = {}
        self._forced: dict[str, list[tuple[int, int]]] = {}

    # ------------------------------------------------------------------
    def bit_time_us(self, bits: int) -> int:
        """Microseconds (rounded up) for a number of bit times."""
        return -(-bits * 1_000_000 // self.bitrate)

    def node_state(self, node: str) -> NodeErrorState:
        """This node's confinement state (created error-active on demand)."""
        state = self._states.get(node)
        if state is None:
            state = self._states[node] = NodeErrorState(node=node)
        return state

    def force_error_window(self, node: str, start_us: int,
                           end_us: int) -> None:
        """Fail every attempt ``node`` starts in ``[start_us, end_us)``.

        The deterministic fault primitive behind bus-off storms: unlike
        ``error_rate`` it consumes no RNG, targets one node, and drives
        its TEC through error-passive to bus-off in bounded time.
        """
        if end_us <= start_us:
            raise ValueError(f"empty forced-error window [{start_us}, {end_us})")
        self.node_state(node)   # make the node visible to probes
        self._forced.setdefault(node, []).append((start_us, end_us))

    def _forced_error(self, node: str, now: int) -> bool:
        return any(start <= now < end
                   for start, end in self._forced.get(node, ()))

    def submit(self, frame: CanFrame, node: str = "?",
               injected: bool = False) -> QueuedMessage:
        """Queue a frame for transmission (from a node's TX mailbox).

        ``injected=True`` marks fault-layer traffic that bypasses any
        controller TX path (a babbling-idiot sender, a spoofed frame);
        it is counted separately so frame-conservation checks stay exact.
        """
        message = QueuedMessage(frame=frame, queued_at=self.scheduler.now, node=node)
        if injected:
            self.frames_injected += 1
        state = self._states.get(node)
        if state is not None and state.bus_off:
            # the node's controller is off the bus: park the frame, it
            # re-enters arbitration at recovery with its queue time kept
            state.held.append(message)
            self.trace.emit(self.scheduler.now, "can", "held",
                            can_id=frame.can_id, node=node)
            return message
        self.pending.append(message)
        self.trace.emit(self.scheduler.now, "can", "queued",
                        can_id=frame.can_id, node=node)
        self._try_start()
        return message

    def subscribe(self, callback) -> None:
        """Register a listener called on every successful delivery."""
        self.listeners.append(callback)

    # ------------------------------------------------------------------
    def _try_start(self) -> None:
        if self.transmitting is not None or not self.pending:
            return
        now = self.scheduler.now
        if now < self.busy_until:
            self.scheduler.at(self.busy_until, self._try_start)
            return
        # suspend transmission: error-passive nodes sit out their window
        eligible = [m for m in self.pending
                    if self.node_state(m.node).suspend_until_us <= now]
        if not eligible:
            wake = min(self.node_state(m.node).suspend_until_us
                       for m in self.pending)
            self.scheduler.at(wake, self._try_start)
            return
        # arbitration: lowest identifier wins (FIFO among equal IDs)
        winner = min(eligible, key=lambda m: (m.frame.can_id, m.queued_at))
        self.pending.remove(winner)
        self.transmitting = winner
        winner.attempts += 1
        duration = self.bit_time_us(winner.frame.wire_bits)
        corrupted = self.error_rate > 0 and self.rng.random() < self.error_rate
        forced = self._forced_error(winner.node, now)
        if corrupted or forced:
            self.errors_injected += 1
            winner.errors += 1
            # error detected mid-frame: error frame + retransmission
            penalty = self.bit_time_us(ERROR_FRAME_BITS)
            lost = duration // 2 + penalty
            winner.error_latency_us += lost
            self.scheduler.after(lost,
                                 lambda: self._transmission_failed(winner, forced))
        else:
            self.scheduler.after(duration, lambda: self._transmission_done(winner))
        self.trace.emit(self.scheduler.now, "can", "arbitration_won",
                        can_id=winner.frame.can_id, attempt=winner.attempts)

    # ------------------------------------------------------------------
    # fault confinement
    # ------------------------------------------------------------------
    def _bump_receivers(self, transmitter: str, now: int) -> None:
        for state in self._states.values():
            if state.node == transmitter or state.bus_off:
                continue
            state.rec += 1
            self._check_passive(state, now)

    def _check_passive(self, state: NodeErrorState, now: int) -> None:
        if (state.state == ERROR_ACTIVE
                and (state.tec >= ERROR_PASSIVE_THRESHOLD
                     or state.rec >= ERROR_PASSIVE_THRESHOLD)):
            state.state = ERROR_PASSIVE
            self.trace.emit(now, "can", "error_passive", node=state.node,
                            tec=state.tec, rec=state.rec)

    def _check_active(self, state: NodeErrorState) -> None:
        if (state.state == ERROR_PASSIVE
                and state.tec < ERROR_PASSIVE_THRESHOLD
                and state.rec < ERROR_PASSIVE_THRESHOLD):
            state.state = ERROR_ACTIVE

    def _transmission_failed(self, message: QueuedMessage,
                             forced: bool) -> None:
        now = self.scheduler.now
        self.transmitting = None
        self.busy_until = now
        state = self.node_state(message.node)
        state.tec += TEC_ERROR_INCREMENT
        self._bump_receivers(message.node, now)
        self.trace.emit(now, "can", "error_frame",
                        can_id=message.frame.can_id, node=message.node,
                        tec=state.tec, forced=forced)
        if state.tec >= BUS_OFF_THRESHOLD:
            self._enter_bus_off(state, message)
        else:
            self._check_passive(state, now)
            if state.error_passive:
                state.suspend_until_us = now + self.bit_time_us(
                    SUSPEND_TRANSMISSION_BITS)
            self.pending.append(message)  # automatic retransmission
        self._try_start()

    def _enter_bus_off(self, state: NodeErrorState,
                       message: QueuedMessage) -> None:
        now = self.scheduler.now
        recover_at = now + self.bit_time_us(BUS_OFF_RECOVERY_BITS)
        state.state = BUS_OFF
        state.bus_off_events += 1
        state.bus_off_log.append((now, recover_at))
        state.held.append(message)
        # park the node's other queued frames too: its controller is off
        for parked in [m for m in self.pending if m.node == state.node]:
            self.pending.remove(parked)
            state.held.append(parked)
        self.trace.emit(now, "can", "bus_off", node=state.node,
                        tec=state.tec, recover_at=recover_at,
                        held=len(state.held))
        self.scheduler.at(recover_at, lambda: self._recover(state))

    def _recover(self, state: NodeErrorState) -> None:
        now = self.scheduler.now
        state.tec = 0
        state.rec = 0
        state.state = ERROR_ACTIVE
        state.suspend_until_us = 0
        state.bus_off_log[-1] = (state.bus_off_log[-1][0], now)
        released, state.held = state.held, []
        self.pending.extend(released)
        self.trace.emit(now, "can", "bus_off_recovered", node=state.node,
                        released=len(released))
        self._try_start()

    def _transmission_done(self, message: QueuedMessage) -> None:
        now = self.scheduler.now
        self.transmitting = None
        self.busy_until = now
        self.busy_us += self.bit_time_us(message.frame.wire_bits)
        state = self._states.get(message.node)
        if state is not None:
            state.tec = max(state.tec - 1, 0)
            for other in self._states.values():
                if other.node != message.node and not other.bus_off:
                    other.rec = max(other.rec - 1, 0)
                    self._check_active(other)
            self._check_active(state)
            if state.error_passive:
                state.suspend_until_us = now + self.bit_time_us(
                    SUSPEND_TRANSMISSION_BITS)
        record = DeliveryRecord(can_id=message.frame.can_id, node=message.node,
                                queued_at=message.queued_at,
                                completed_at=now,
                                attempts=message.attempts,
                                errors=message.errors,
                                retry_latency_us=message.error_latency_us)
        self.deliveries.append(record)
        self.trace.emit(now, "can", "delivered",
                        can_id=message.frame.can_id,
                        response=record.response_time)
        for listener in self.listeners:
            listener(message.frame, record)
        self._try_start()

    # ------------------------------------------------------------------
    @property
    def backlog(self) -> int:
        """Frames accepted but not yet delivered: queued, on the wire,
        or parked behind a bus-off node."""
        held = sum(len(state.held) for state in self._states.values())
        return len(self.pending) + (1 if self.transmitting else 0) + held

    @property
    def bus_off_events(self) -> int:
        return sum(state.bus_off_events for state in self._states.values())

    def error_accounting(self) -> dict:
        """Injected errors vs errors attributed to messages (must agree)."""
        on_messages = sum(d.errors for d in self.deliveries)
        on_messages += sum(m.errors for m in self.pending)
        if self.transmitting is not None:
            on_messages += self.transmitting.errors
        for state in self._states.values():
            on_messages += sum(m.errors for m in state.held)
        return {
            "errors_injected": self.errors_injected,
            "errors_on_messages": on_messages,
            "coherent": self.errors_injected == on_messages,
        }

    def worst_response(self, can_id: int) -> int:
        times = [d.response_time for d in self.deliveries if d.can_id == can_id]
        return max(times, default=0)

    def utilisation(self, horizon_us: int) -> float:
        """Fraction of the horizon the bus spent transmitting."""
        return min(self.busy_us / horizon_us, 1.0) if horizon_us else 0.0


@dataclass
class PeriodicSender:
    """A node queueing one frame every period (body-electronics style)."""

    bus: CanBus
    can_id: int
    payload: bytes
    period_us: int
    node: str = "ecu"
    jitter_us: int = 0
    rng: DeterministicRng | None = None
    sent: int = field(default=0)

    def start(self, offset_us: int = 0) -> None:
        self.bus.scheduler.at(self.bus.scheduler.now + offset_us, self._fire)

    def _fire(self) -> None:
        delay = 0
        if self.jitter_us and self.rng is not None:
            delay = self.rng.randint(0, self.jitter_us)
        self.bus.scheduler.after(delay, self._send)
        self.bus.scheduler.after(self.period_us, self._fire)

    def _send(self) -> None:
        self.sent += 1
        self.bus.submit(CanFrame(self.can_id, self.payload), node=self.node)
