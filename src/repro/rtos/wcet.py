"""WCET extraction: measured kernel cycles feed the schedulability model.

This is the bridge between the ISA-level core models and the RTOS layer:
a task's worst-case execution time is estimated by running its kernel on
a core model across many inputs and taking the maximum observed cycles
(optionally padded by a safety margin, as certification practice does
with measurement-based timing analysis).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa import ISA_THUMB2
from repro.workloads.harness import run_kernel
from repro.workloads.kernels import Workload


@dataclass
class WcetEstimate:
    workload: str
    core: str
    isa: str
    observed_max: int
    observed_min: int
    samples: int
    margin: float

    @property
    def wcet(self) -> int:
        return int(self.observed_max * (1.0 + self.margin))


def measure_wcet(workload: Workload, core: str = "m3", isa: str = ISA_THUMB2,
                 samples: int = 10, margin: float = 0.2,
                 machine_kwargs: dict | None = None) -> WcetEstimate:
    """Measurement-based WCET: max cycles over ``samples`` random inputs."""
    observed = []
    for seed in range(samples):
        run = run_kernel(workload, core, isa, seed=seed,
                         machine_kwargs=machine_kwargs)
        if not run.verified:
            raise AssertionError(
                f"{workload.name} mis-executed during WCET measurement")
        observed.append(run.cycles)
    return WcetEstimate(workload=workload.name, core=core, isa=isa,
                        observed_max=max(observed), observed_min=min(observed),
                        samples=samples, margin=margin)
