"""An OSEK-flavoured real-time kernel on the discrete-event engine.

The ARM1156 features in paper section 3.1 exist to serve OSEK 2.1.1
systems: many small isolated tasks, priority-ceiling resources, and tight
response-time requirements.  This kernel models the OSEK task state
machine (SUSPENDED / READY / RUNNING / WAITING), fixed-priority preemptive
scheduling, BCC-style activation limits, ECC-style events, priority-ceiling
resources, and alarms - enough to measure scheduling behaviour and to
cross-check the response-time analysis in :mod:`repro.rtos.analysis`.

Task bodies are Python generators yielding directives::

    def body(api):
        yield Compute(1200)            # burn 1200 ticks of CPU
        yield GetResource("sensors")
        yield Compute(300)
        yield ReleaseResource("sensors")
        yield ActivateTask("logger")
        # returning terminates the task (TerminateTask)

Preemption is modelled exactly: a Compute can be interrupted by a
higher-priority activation and resumed later with the remaining time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.events import Event, EventScheduler
from repro.sim.trace import TraceRecorder

SUSPENDED = "suspended"
READY = "ready"
RUNNING = "running"
WAITING = "waiting"


# -- directives a task body may yield ------------------------------------

@dataclass(frozen=True)
class Compute:
    ticks: int


@dataclass(frozen=True)
class GetResource:
    name: str


@dataclass(frozen=True)
class ReleaseResource:
    name: str


@dataclass(frozen=True)
class ActivateTask:
    name: str


@dataclass(frozen=True)
class ChainTask:
    name: str


@dataclass(frozen=True)
class SetEvent:
    task: str
    mask: int


@dataclass(frozen=True)
class ClearEvent:
    mask: int


@dataclass(frozen=True)
class WaitEvent:
    mask: int


class OsekError(Exception):
    """E_OS_* conditions surfaced as exceptions (strict mode) or counters."""


@dataclass
class Task:
    name: str
    priority: int                     # bigger = more urgent
    body_factory: object              # (api) -> generator
    preemptable: bool = True
    max_activations: int = 1          # BCC1 = 1; BCC2 allows queueing
    extended: bool = False            # ECC tasks may WaitEvent

    state: str = SUSPENDED
    pending_activations: int = 0
    dynamic_priority: int = 0
    events_pending: int = 0
    events_waited: int = 0
    body: object = None
    remaining_compute: int = 0
    compute_event: Event | None = None
    compute_started_at: int = 0
    activated_at: int = 0
    held_resources: list = field(default_factory=list)

    # metrics
    activations: int = 0
    terminations: int = 0
    activation_failures: int = 0      # E_OS_LIMIT occurrences
    response_times: list[int] = field(default_factory=list)

    def worst_response(self) -> int:
        return max(self.response_times, default=0)


@dataclass
class Resource:
    name: str
    ceiling: int = 0
    holder: str | None = None


@dataclass
class Alarm:
    name: str
    task: str
    offset: int
    period: int  # 0 = one-shot
    enabled: bool = True
    expiries: int = 0


class OsekKernel:
    """Fixed-priority preemptive scheduler with OSEK semantics."""

    def __init__(self, scheduler: EventScheduler | None = None,
                 context_switch_cost: int = 0,
                 trace: TraceRecorder | None = None,
                 strict: bool = False) -> None:
        self.scheduler = scheduler or EventScheduler()
        self.context_switch_cost = context_switch_cost
        # not "trace or ...": an empty TraceRecorder is falsy (__len__)
        self.trace = trace if trace is not None else TraceRecorder(enabled=False)
        self.strict = strict
        self.tasks: dict[str, Task] = {}
        self.resources: dict[str, Resource] = {}
        self.alarms: dict[str, Alarm] = {}
        self._resource_users: dict[str, list[str]] = {}
        self.running: Task | None = None
        self.idle_ticks = 0
        self._last_dispatch_check = 0
        self.context_switches = 0

    # ------------------------------------------------------------------
    # configuration
    # ------------------------------------------------------------------
    def add_task(self, name: str, priority: int, body_factory,
                 preemptable: bool = True, max_activations: int = 1,
                 extended: bool = False, autostart: bool = False) -> Task:
        if name in self.tasks:
            raise ValueError(f"duplicate task {name!r}")
        task = Task(name=name, priority=priority, body_factory=body_factory,
                    preemptable=preemptable, max_activations=max_activations,
                    extended=extended)
        task.dynamic_priority = priority
        self.tasks[name] = task
        if autostart:
            self.scheduler.at(self.scheduler.now, lambda: self.activate(name))
        return task

    def add_resource(self, name: str, users: list[str]) -> Resource:
        """Declare a resource; its ceiling is the highest user priority."""
        ceiling = max(self.tasks[u].priority for u in users)
        resource = Resource(name=name, ceiling=ceiling)
        self.resources[name] = resource
        self._resource_users[name] = list(users)
        return resource

    def add_alarm(self, name: str, task: str, offset: int, period: int = 0) -> Alarm:
        alarm = Alarm(name=name, task=task, offset=offset, period=period)
        self.alarms[name] = alarm
        self.scheduler.at(self.scheduler.now + offset,
                          lambda: self._alarm_expire(alarm))
        return alarm

    def _alarm_expire(self, alarm: Alarm) -> None:
        if not alarm.enabled:
            return
        alarm.expiries += 1
        self.activate(alarm.task)
        if alarm.period:
            self.scheduler.after(alarm.period, lambda: self._alarm_expire(alarm))

    # ------------------------------------------------------------------
    # OSEK services
    # ------------------------------------------------------------------
    def activate(self, name: str) -> bool:
        """ActivateTask: returns False on E_OS_LIMIT."""
        task = self.tasks[name]
        if task.state != SUSPENDED:
            if task.pending_activations + 1 >= task.max_activations:
                task.activation_failures += 1
                self.trace.emit(self.scheduler.now, "osek", "E_OS_LIMIT", task=name)
                if self.strict:
                    raise OsekError(f"E_OS_LIMIT activating {name}")
                return False
            task.pending_activations += 1
            task.activations += 1
            return True
        task.activations += 1
        task.activated_at = self.scheduler.now
        self._make_ready(task)
        self._dispatch()
        return True

    def set_event(self, name: str, mask: int) -> None:
        task = self.tasks[name]
        if not task.extended:
            raise OsekError(f"SetEvent on basic task {name}")
        if task.state == SUSPENDED:
            if self.strict:
                raise OsekError(f"SetEvent on suspended task {name}")
            return
        task.events_pending |= mask
        if task.state == WAITING and task.events_pending & task.events_waited:
            self._make_ready(task)
            self._dispatch()

    # ------------------------------------------------------------------
    # scheduling internals
    # ------------------------------------------------------------------
    def _make_ready(self, task: Task) -> None:
        task.state = READY
        self.trace.emit(self.scheduler.now, "osek", "ready", task=task.name)

    def _ready_tasks(self) -> list[Task]:
        return [t for t in self.tasks.values() if t.state == READY]

    def _dispatch(self) -> None:
        """Ensure the highest-priority ready/running task is running."""
        ready = self._ready_tasks()
        if not ready:
            return
        best = max(ready, key=lambda t: (t.dynamic_priority, -t.activated_at))
        current = self.running
        if current is not None:
            if not current.preemptable:
                return
            if current.dynamic_priority >= best.dynamic_priority:
                return
            self._preempt(current)
        self._start_or_resume(best)

    def _preempt(self, task: Task) -> None:
        if task.compute_event is not None:
            task.compute_event.cancel()
            elapsed = self.scheduler.now - task.compute_started_at
            task.remaining_compute = max(task.remaining_compute - elapsed, 0)
            task.compute_event = None
        task.state = READY
        self.running = None
        self.trace.emit(self.scheduler.now, "osek", "preempt", task=task.name)

    def _start_or_resume(self, task: Task) -> None:
        task.state = RUNNING
        self.running = task
        self.context_switches += 1
        self.trace.emit(self.scheduler.now, "osek", "run", task=task.name)
        delay = self.context_switch_cost

        if task.body is None:
            task.body = task.body_factory(self)
            self.scheduler.after(delay, lambda: self._advance(task))
            return
        if task.remaining_compute > 0:
            self._begin_compute(task, task.remaining_compute, extra_delay=delay)
            return
        self.scheduler.after(delay, lambda: self._advance(task))

    def _begin_compute(self, task: Task, ticks: int, extra_delay: int = 0) -> None:
        task.remaining_compute = ticks
        task.compute_started_at = self.scheduler.now + extra_delay
        task.compute_event = self.scheduler.after(
            ticks + extra_delay, lambda: self._compute_done(task))

    def _compute_done(self, task: Task) -> None:
        task.compute_event = None
        task.remaining_compute = 0
        self._advance(task)

    def _advance(self, task: Task) -> None:
        """Feed the task body until it computes, waits, or terminates."""
        if task.state != RUNNING:
            return
        while True:
            try:
                directive = next(task.body)
            except StopIteration:
                self._terminate(task)
                return
            if isinstance(directive, Compute):
                if directive.ticks > 0:
                    self._begin_compute(task, directive.ticks)
                    return
                continue
            if isinstance(directive, GetResource):
                self._get_resource(task, directive.name)
                continue
            if isinstance(directive, ReleaseResource):
                released_dispatch = self._release_resource(task, directive.name)
                if released_dispatch:
                    return
                continue
            if isinstance(directive, ActivateTask):
                self.activate(directive.name)
                if task.state != RUNNING:
                    return  # we were preempted by what we activated
                continue
            if isinstance(directive, ChainTask):
                self._terminate(task, chain_to=directive.name)
                return
            if isinstance(directive, SetEvent):
                self.set_event(directive.task, directive.mask)
                if task.state != RUNNING:
                    return
                continue
            if isinstance(directive, ClearEvent):
                task.events_pending &= ~directive.mask
                continue
            if isinstance(directive, WaitEvent):
                if not task.extended:
                    raise OsekError(f"WaitEvent in basic task {task.name}")
                if task.events_pending & directive.mask:
                    continue  # already pending: no state change
                task.events_waited = directive.mask
                task.state = WAITING
                self.running = None
                self.trace.emit(self.scheduler.now, "osek", "wait", task=task.name)
                self._dispatch()
                return
            raise OsekError(f"unknown directive {directive!r}")

    def _get_resource(self, task: Task, name: str) -> None:
        resource = self.resources[name]
        if resource.holder is not None:
            raise OsekError(
                f"ceiling protocol violated: {name} already held by {resource.holder}")
        resource.holder = task.name
        task.held_resources.append(name)
        # immediate priority ceiling
        task.dynamic_priority = max(task.dynamic_priority, resource.ceiling)
        self.trace.emit(self.scheduler.now, "osek", "get_resource",
                        task=task.name, resource=name)

    def _release_resource(self, task: Task, name: str) -> bool:
        resource = self.resources[name]
        if resource.holder != task.name:
            raise OsekError(f"{task.name} releasing {name} it does not hold")
        resource.holder = None
        task.held_resources.remove(name)
        ceilings = [self.resources[r].ceiling for r in task.held_resources]
        task.dynamic_priority = max([task.priority] + ceilings)
        self.trace.emit(self.scheduler.now, "osek", "release_resource",
                        task=task.name, resource=name)
        # lowering our priority may let a blocked higher task run
        ready = self._ready_tasks()
        if ready and max(t.dynamic_priority for t in ready) > task.dynamic_priority:
            self._preempt(task)
            self._dispatch()
            return True
        return False

    def _terminate(self, task: Task, chain_to: str | None = None) -> None:
        if task.held_resources:
            raise OsekError(f"{task.name} terminated holding {task.held_resources}")
        task.state = SUSPENDED
        task.body = None
        task.terminations += 1
        task.events_pending = 0
        task.events_waited = 0
        task.response_times.append(self.scheduler.now - task.activated_at)
        self.running = None
        self.trace.emit(self.scheduler.now, "osek", "terminate", task=task.name)
        if chain_to is not None:
            self.activate(chain_to)
        if task.pending_activations > 0:
            task.pending_activations -= 1
            task.activated_at = self.scheduler.now
            self._make_ready(task)
        self._dispatch()

    # ------------------------------------------------------------------
    def run(self, until: int) -> None:
        self.scheduler.run(until=until)

    def cpu_utilisation(self, horizon: int) -> float:
        """Fraction of the horizon spent in task compute (approximate)."""
        busy = sum(sum(t.response_times) for t in self.tasks.values())
        return min(busy / horizon, 1.0) if horizon else 0.0
