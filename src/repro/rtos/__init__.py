"""OSEK-style RTOS substrate: kernel model, schedulability analysis, WCET."""

from repro.rtos.analysis import (
    AnalysedTask,
    AnalysisResult,
    TaskResponse,
    breakdown_utilisation,
    rate_monotonic_priorities,
    response_time_analysis,
    utilisation_bound,
)
from repro.rtos.kernel import (
    READY,
    RUNNING,
    SUSPENDED,
    WAITING,
    ActivateTask,
    Alarm,
    ChainTask,
    ClearEvent,
    Compute,
    GetResource,
    OsekError,
    OsekKernel,
    ReleaseResource,
    Resource,
    SetEvent,
    Task,
    WaitEvent,
)
from repro.rtos.wcet import WcetEstimate, measure_wcet

__all__ = [
    "AnalysedTask", "AnalysisResult", "TaskResponse",
    "breakdown_utilisation", "rate_monotonic_priorities",
    "response_time_analysis", "utilisation_bound",
    "READY", "RUNNING", "SUSPENDED", "WAITING",
    "ActivateTask", "Alarm", "ChainTask", "ClearEvent", "Compute",
    "GetResource", "OsekError", "OsekKernel", "ReleaseResource",
    "Resource", "SetEvent", "Task", "WaitEvent",
    "WcetEstimate", "measure_wcet",
]
