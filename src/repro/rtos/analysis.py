"""Fixed-priority schedulability analysis for OSEK-style task sets.

Classic response-time analysis (Joseph & Pandya; Audsley et al.) with
priority-ceiling blocking, as used throughout automotive scheduling
practice.  The simulation kernel (:mod:`repro.rtos.kernel`) provides the
empirical cross-check: analysis worst-case response times must bound the
simulated ones.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass(frozen=True)
class AnalysedTask:
    """Static task parameters for analysis."""

    name: str
    wcet: int                  # C: worst-case execution time
    period: int                # T: minimum inter-arrival
    deadline: int | None = None  # D (defaults to T)
    priority: int | None = None  # bigger = more urgent; None = assign RM
    jitter: int = 0            # J: release jitter
    critical_sections: tuple[tuple[str, int], ...] = ()  # (resource, length)

    @property
    def effective_deadline(self) -> int:
        return self.deadline if self.deadline is not None else self.period

    @property
    def utilisation(self) -> float:
        return self.wcet / self.period


@dataclass
class TaskResponse:
    name: str
    priority: int
    response: int | None       # None = did not converge (unschedulable)
    blocking: int
    deadline: int

    @property
    def schedulable(self) -> bool:
        return self.response is not None and self.response <= self.deadline


@dataclass
class AnalysisResult:
    tasks: list[TaskResponse] = field(default_factory=list)
    utilisation: float = 0.0

    @property
    def schedulable(self) -> bool:
        return all(t.schedulable for t in self.tasks)

    def response_of(self, name: str) -> TaskResponse:
        for task in self.tasks:
            if task.name == name:
                return task
        raise KeyError(name)


def rate_monotonic_priorities(tasks: list[AnalysedTask]) -> dict[str, int]:
    """Shorter period -> higher priority (ties broken by name)."""
    ordered = sorted(tasks, key=lambda t: (-t.period, t.name))
    return {task.name: index for index, task in enumerate(ordered)}


def utilisation_bound(n: int) -> float:
    """Liu & Layland's sufficient RM bound: n(2^(1/n) - 1)."""
    if n <= 0:
        return 0.0
    return n * (2 ** (1.0 / n) - 1)


def _blocking_time(task: AnalysedTask, priority: dict[str, int],
                   tasks: list[AnalysedTask]) -> int:
    """Priority-ceiling blocking: the longest critical section of any
    lower-priority task using a resource whose ceiling is at least ours."""
    my_priority = priority[task.name]
    ceilings: dict[str, int] = {}
    for other in tasks:
        for resource, _length in other.critical_sections:
            ceilings[resource] = max(ceilings.get(resource, -1), priority[other.name])
    worst = 0
    for other in tasks:
        if priority[other.name] >= my_priority:
            continue
        for resource, length in other.critical_sections:
            if ceilings.get(resource, -1) >= my_priority:
                worst = max(worst, length)
    return worst


def response_time_analysis(tasks: list[AnalysedTask],
                           context_switch: int = 0,
                           limit_factor: int = 100) -> AnalysisResult:
    """Compute worst-case response times for the whole task set."""
    if any(t.priority is not None for t in tasks):
        priority = {t.name: t.priority for t in tasks}
        if any(p is None for p in priority.values()):
            raise ValueError("either assign all priorities or none")
    else:
        priority = rate_monotonic_priorities(tasks)

    result = AnalysisResult(utilisation=sum(t.utilisation for t in tasks))
    for task in tasks:
        cost = task.wcet + 2 * context_switch
        blocking = _blocking_time(task, priority, tasks)
        higher = [t for t in tasks if priority[t.name] > priority[task.name]]
        response = _fixpoint(cost, blocking, task, higher, context_switch,
                             limit=limit_factor * task.effective_deadline + 1)
        result.tasks.append(TaskResponse(
            name=task.name, priority=priority[task.name],
            response=response, blocking=blocking,
            deadline=task.effective_deadline))
    result.tasks.sort(key=lambda t: -t.priority)
    return result


def _fixpoint(cost: int, blocking: int, task: AnalysedTask,
              higher: list[AnalysedTask], context_switch: int,
              limit: int) -> int | None:
    response = cost + blocking
    while True:
        interference = sum(
            math.ceil((response + h.jitter) / h.period) * (h.wcet + 2 * context_switch)
            for h in higher
        )
        next_response = cost + blocking + interference
        if next_response == response:
            return response + task.jitter
        if next_response > limit:
            return None
        response = next_response


def breakdown_utilisation(tasks: list[AnalysedTask], context_switch: int = 0,
                          precision: float = 0.005) -> float:
    """Binary-search the scale factor at which the set stops being
    schedulable (a standard sensitivity metric)."""
    def schedulable_at(scale: float) -> bool:
        scaled = [
            AnalysedTask(name=t.name, wcet=max(int(t.wcet * scale), 1),
                         period=t.period, deadline=t.deadline,
                         priority=t.priority, jitter=t.jitter,
                         critical_sections=t.critical_sections)
            for t in tasks
        ]
        return response_time_analysis(scaled, context_switch).schedulable

    low, high = 0.0, 1.0
    if not schedulable_at(1.0):
        high = 1.0
    else:
        while schedulable_at(high) and high < 64:
            high *= 2
    while high - low > precision:
        mid = (low + high) / 2
        if schedulable_at(mid):
            low = mid
        else:
            high = mid
    return low * sum(t.utilisation for t in tasks)
