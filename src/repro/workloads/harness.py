"""Measurement harness over the AutoIndy-style suite.

Provides the machinery behind Table 1 / Figure 1: compile each kernel for
a (core, ISA) configuration, run it on the matching core model with a
deterministic input, verify the result against the pure-Python reference,
and report cycles and code size.  The headline metric mirrors the paper's
"Scaled GM/MHz": kernel iterations per million cycles, geometric-mean'd
across the suite (clock frequency divides out, exactly as in GM/MHz).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.codegen import compile_program
from repro.core import FLASH_BASE, SRAM_BASE, build_arm7, build_cortexm3
from repro.isa import ISA_ARM, ISA_THUMB, ISA_THUMB2
from repro.sim.rng import DeterministicRng
from repro.workloads.kernels import AUTOINDY_SUITE, Workload

#: The paper's Table 1 rows: (label, core builder, ISA).
TABLE1_CONFIGS = (
    ("ARM7 (ARM)", "arm7", ISA_ARM),
    ("ARM7 (Thumb)", "arm7", ISA_THUMB),
    ("Cortex-M3 (Thumb-2)", "m3", ISA_THUMB2),
)


@dataclass
class KernelRun:
    """One verified kernel execution."""

    workload: str
    isa: str
    core: str
    result: int
    expected: int
    cycles: int
    instructions: int
    code_bytes: int
    total_bytes: int

    @property
    def verified(self) -> bool:
        return self.result == self.expected

    @property
    def iterations_per_mcycle(self) -> float:
        return 1_000_000 / self.cycles if self.cycles else 0.0


@dataclass
class SuiteResult:
    """All kernels for one (core, ISA) configuration."""

    label: str
    core: str
    isa: str
    runs: list[KernelRun] = field(default_factory=list)
    suite_code_bytes: int = 0  # one combined build: helpers linked once

    @property
    def geometric_mean(self) -> float:
        """GM of iterations/Mcycle across the suite (the GM/MHz analogue)."""
        values = [r.iterations_per_mcycle for r in self.runs]
        if not values or any(v <= 0 for v in values):
            return 0.0
        return math.exp(sum(math.log(v) for v in values) / len(values))

    @property
    def code_size(self) -> int:
        """Code bytes for the suite built as one program (shared helpers),
        the way a real firmware image would link it."""
        if self.suite_code_bytes:
            return self.suite_code_bytes
        return sum(r.total_bytes for r in self.runs)

    @property
    def all_verified(self) -> bool:
        return all(r.verified for r in self.runs)


def _build_machine(core: str, program, **kwargs):
    if core == "arm7":
        return build_arm7(program, **kwargs)
    if core in ("m3", "cortex-m3"):
        return build_cortexm3(program, **kwargs)
    raise ValueError(f"unknown core {core!r}")


def run_kernel(workload: Workload, core: str, isa: str, seed: int = 2005,
               scale: int = 1, machine_kwargs: dict | None = None,
               backend_options: dict | None = None) -> KernelRun:
    """Compile, execute, and verify one kernel on one configuration."""
    fn = workload.build()
    program = compile_program([fn], isa, base=FLASH_BASE,
                              **(backend_options or {}))
    machine = _build_machine(core, program, **(machine_kwargs or {}))
    prepared = workload.make_input(DeterministicRng(seed), scale)
    machine.load_data(SRAM_BASE, prepared.data)
    result = machine.call(fn.name, *prepared.args(SRAM_BASE))
    expected = workload.reference(prepared.data, *prepared.args(0))
    return KernelRun(
        workload=workload.name, isa=isa, core=core,
        result=result, expected=expected,
        cycles=machine.cpu.cycles,
        instructions=machine.cpu.instructions_executed,
        code_bytes=program.code_bytes,
        total_bytes=program.code_bytes + program.literal_bytes,
    )


def _combined_code_size(isa: str, backend_options: dict | None = None) -> int:
    """Code+literal bytes of the suite linked as one image (shared helpers)."""
    combined = compile_program([w.build() for w in AUTOINDY_SUITE], isa,
                               base=FLASH_BASE, **(backend_options or {}))
    return combined.code_bytes + combined.literal_bytes


def run_suite(label: str, core: str, isa: str, seed: int = 2005, scale: int = 1,
              machine_kwargs: dict | None = None,
              backend_options: dict | None = None) -> SuiteResult:
    """Run the whole suite on one configuration."""
    suite = SuiteResult(label=label, core=core, isa=isa)
    for workload in AUTOINDY_SUITE:
        suite.runs.append(run_kernel(workload, core, isa, seed=seed, scale=scale,
                                     machine_kwargs=machine_kwargs,
                                     backend_options=backend_options))
    suite.suite_code_bytes = _combined_code_size(isa, backend_options)
    return suite


def table1(seed: int = 2005, scale: int = 1,
           machine_kwargs: dict | None = None,
           workers: int | None = None) -> list[SuiteResult]:
    """Reproduce the paper's Table 1: three configurations over the suite.

    ``workers`` > 1 fans the 18-cell scenario matrix across processes via
    the campaign runner (:mod:`repro.sim.campaign`); the aggregated result
    is identical to the serial run for any worker count.
    """
    if workers is None or workers <= 1:
        return [run_suite(label, core, isa, seed=seed, scale=scale,
                          machine_kwargs=machine_kwargs)
                for label, core, isa in TABLE1_CONFIGS]

    from repro.sim.campaign import CampaignRequest, execute_request, table1_matrix

    kwargs_tuple = tuple(sorted((machine_kwargs or {}).items()))
    specs = table1_matrix(seed=seed, scale=scale, machine_kwargs=kwargs_tuple)
    campaign = execute_request(
        CampaignRequest(specs=tuple(specs), workers=workers))
    results: list[SuiteResult] = []
    records = iter(campaign.records)
    for label, core, isa in TABLE1_CONFIGS:
        suite = SuiteResult(label=label, core=core, isa=isa)
        for _ in AUTOINDY_SUITE:
            suite.runs.append(next(records).to_kernel_run())
        suite.suite_code_bytes = _combined_code_size(isa)
        results.append(suite)
    return results


def format_table1(results: list[SuiteResult]) -> str:
    """Render results in the paper's Table 1 layout (baseline = first row)."""
    base_perf = results[0].geometric_mean
    base_size = results[0].code_size
    lines = ["Processor Core        Scaled GM (iters/Mcycle)"]
    for suite in results:
        pct = 100.0 * suite.geometric_mean / base_perf if base_perf else 0.0
        lines.append(f"{suite.label:<22}{suite.geometric_mean:10.1f}  ({pct:5.1f}%)")
    lines.append("")
    lines.append("Processor Core        Code Size (bytes)")
    for suite in results:
        pct = 100.0 * suite.code_size / base_size if base_size else 0.0
        lines.append(f"{suite.label:<22}{suite.code_size:10d}  ({pct:5.1f}%)")
    return "\n".join(lines)
