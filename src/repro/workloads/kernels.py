"""The six AutoIndy-style automotive kernels.

EEMBC's AutoBench/AutoIndy suite is proprietary, so these kernels are
rebuilt from the published one-line descriptions of six representative
members.  Each is written once in the kernel IR and ships with a
pure-Python reference implementation; the integration tests require the
IR interpreter, all three compiled ISAs, and the reference to agree
bit-for-bit.

Feature coverage is chosen to exercise exactly the ISA differences the
paper discusses (section 2):

==========  =====================================================
ttsprk      tooth-to-spark: sensor scaling with division, clamping
tblook      table lookup & interpolation: signed loads, signed divide
canrdr      CAN message processing: byte/word shuffles, REV, rotates
bitmnp      bit manipulation: CLZ, RBIT, bitfield extract/insert
rspeed      road speed: 16-bit wraparound deltas, division, select
puwmod      pulse-width modulation: switch dispatch (TBB), multiply
==========  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codegen.ir import Function, IrBuilder

MASK32 = 0xFFFFFFFF


@dataclass
class WorkloadInput:
    """One prepared input: a data blob and kernel arguments.

    Argument values containing the sentinel base ``BASE`` are relative to
    wherever the blob is loaded; the harness substitutes the real address.
    """

    data: bytes
    arg_offsets: tuple          # each: ('ptr', byte_offset) or ('val', value)

    def args(self, base: int) -> tuple[int, ...]:
        out = []
        for kind, value in self.arg_offsets:
            if kind == "ptr":
                out.append(base + value)
            else:
                out.append(value & MASK32)
        return tuple(out)


@dataclass(frozen=True)
class Workload:
    name: str
    description: str
    build: object               # () -> Function
    reference: object           # (bytes, *raw_args) -> int (raw args use base=0)
    make_input: object          # (rng, scale) -> WorkloadInput


# ----------------------------------------------------------------------
# ttsprk - tooth to spark
# ----------------------------------------------------------------------

def build_ttsprk() -> Function:
    """Tooth-to-spark: average tooth period -> engine speed -> clamped
    spark advance, then a per-tooth dwell accumulation.

    One revolution needs one speed computation (two divides total), with
    the per-tooth work being multiply/shift - the realistic division
    density for this function.
    """
    b = IrBuilder("ttsprk", num_params=3)
    periods, count, rpm_scale = b.params
    total = b.const(0, "total")
    walker = b.mov(periods, name="walker")
    remaining = b.mov(count, name="remaining")
    b.label("sumloop")
    period = b.load(walker, 0, size=2, name="period")
    b.assign(total, b.add(total, period))
    b.assign(walker, b.add(walker, 2))
    b.assign(remaining, b.sub(remaining, 1))
    b.brcond("ne", remaining, 0, "sumloop")
    avg = b.udiv(total, count, name="avg")
    b.brcond("eq", avg, 0, "stopped")
    speed = b.udiv(rpm_scale, avg, name="speed")
    adv = b.add(b.lsr(speed, 2), 8, name="adv")
    adv = b.select("hi", adv, 59, 59, adv)
    acc = b.const(0, "acc")
    b.label("dwell")
    tooth = b.load(periods, 0, size=2, name="tooth")
    b.assign(acc, b.add(acc, b.lsr(b.mul(tooth, adv), 8)))
    b.assign(periods, b.add(periods, 2))
    b.assign(count, b.sub(count, 1))
    b.brcond("ne", count, 0, "dwell")
    b.ret(b.add(acc, adv))
    b.label("stopped")
    b.ret(b.const(0))
    return b.build()


def ttsprk_reference(data: bytes, periods_off: int, count: int, rpm_scale: int) -> int:
    periods = [
        int.from_bytes(data[periods_off + 2 * i:periods_off + 2 * i + 2], "little")
        for i in range(count)
    ]
    avg = sum(periods) // count
    if avg == 0:
        return 0
    adv = min((rpm_scale // avg) // 4 + 8, 59)
    acc = 0
    for period in periods:
        acc = (acc + ((period * adv) >> 8)) & MASK32
    return (acc + adv) & MASK32


def make_ttsprk_input(rng, scale: int = 1) -> WorkloadInput:
    count = 32 * scale
    periods = [rng.randint(0, 2000) if rng.random() > 0.05 else 0 for _ in range(count)]
    data = b"".join(p.to_bytes(2, "little") for p in periods)
    return WorkloadInput(data=data,
                         arg_offsets=(("ptr", 0), ("val", count), ("val", 480_000)))


# ----------------------------------------------------------------------
# tblook - table lookup and interpolation
# ----------------------------------------------------------------------

_TBLOOK_POINTS = 16  # x table then y table, each 16 x i16


def build_tblook() -> Function:
    """Linear interpolation in a sorted signed table (x[16] then y[16])."""
    b = IrBuilder("tblook", num_params=2)
    table, x = b.params
    i = b.const(0, "i")
    limit = b.const(_TBLOOK_POINTS - 2, "limit")
    b.label("scan")
    b.brcond("hs", i, limit, "found")
    nxt = b.load_idx(table, b.add(i, 1), shift=1, size=-2, name="nxt")
    b.brcond("gt", nxt, x, "found")
    b.assign(i, b.add(i, 1))
    b.br("scan")
    b.label("found")
    addr = b.add(table, b.lsl(i, 1), name="addr")
    x0 = b.load(addr, 0, size=-2, name="x0")
    x1 = b.load(addr, 2, size=-2, name="x1")
    y0 = b.load(addr, 2 * _TBLOOK_POINTS, size=-2, name="y0")
    y1 = b.load(addr, 2 * _TBLOOK_POINTS + 2, size=-2, name="y1")
    dy = b.sub(y1, y0, name="dy")
    dx = b.sub(x1, x0, name="dx")
    num = b.mul(b.sub(x, x0), dy, name="num")
    y = b.add(y0, b.sdiv(num, dx))
    b.ret(b.uxth(y))
    return b.build()


def tblook_reference(data: bytes, table_off: int, x: int) -> int:
    def s16(off):
        v = int.from_bytes(data[off:off + 2], "little")
        return v - 0x10000 if v & 0x8000 else v

    xs = [s16(table_off + 2 * k) for k in range(_TBLOOK_POINTS)]
    ys = [s16(table_off + 2 * (_TBLOOK_POINTS + k)) for k in range(_TBLOOK_POINTS)]
    x = x - 0x1_0000_0000 if x & 0x8000_0000 else x
    i = 0
    while i < _TBLOOK_POINTS - 2 and xs[i + 1] <= x:
        i += 1
    dy = ys[i + 1] - ys[i]
    dx = xs[i + 1] - xs[i]
    num = (x - xs[i]) * dy
    # C-style truncated division (matches SDIV)
    q = abs(num) // abs(dx)
    if (num < 0) != (dx < 0):
        q = -q
    return (ys[i] + q) & 0xFFFF


def make_tblook_input(rng, scale: int = 1) -> WorkloadInput:
    xs = sorted(rng.randint(-2000, 2000) for _ in range(_TBLOOK_POINTS))
    # enforce strictly increasing x so dx is never zero
    for k in range(1, _TBLOOK_POINTS):
        if xs[k] <= xs[k - 1]:
            xs[k] = xs[k - 1] + 1
    ys = [rng.randint(-3000, 3000) for _ in range(_TBLOOK_POINTS)]
    blob = b"".join((v & 0xFFFF).to_bytes(2, "little") for v in xs + ys)
    query = rng.randint(xs[0], xs[-1])
    return WorkloadInput(data=blob, arg_offsets=(("ptr", 0), ("val", query & MASK32)))


# ----------------------------------------------------------------------
# canrdr - CAN remote data request (message shuffle + checksum)
# ----------------------------------------------------------------------

def build_canrdr() -> Function:
    """Per 8-byte frame: checksum = ror(checksum,3) ^ w0 ^ rev(w1), stored out.

    Walks the frame and output pointers instead of indexing to stay inside
    the 16-bit Thumb low-register budget - exactly the register-pressure
    discipline real Thumb compilers apply.
    """
    b = IrBuilder("canrdr", num_params=3)
    frames, count, out = b.params
    checksum = b.const(0, "checksum")
    b.label("frame")
    w0 = b.load(frames, 0, name="w0")
    w1 = b.load(frames, 4, name="w1")
    rotated = b.ror(checksum, 3)
    mixed = b.eor(rotated, w0)
    b.assign(checksum, b.eor(mixed, b.rev(w1)))
    b.store(checksum, out, 0)
    b.assign(frames, b.add(frames, 8))
    b.assign(out, b.add(out, 4))
    b.assign(count, b.sub(count, 1))
    b.brcond("ne", count, 0, "frame")
    b.ret(checksum)
    return b.build()


def canrdr_reference(data: bytes, frames_off: int, count: int, out_off: int) -> int:
    checksum = 0
    for i in range(count):
        off = frames_off + 8 * i
        w0 = int.from_bytes(data[off:off + 4], "little")
        w1 = int.from_bytes(data[off + 4:off + 8], "little")
        rotated = ((checksum >> 3) | (checksum << 29)) & MASK32
        rev = int.from_bytes(w1.to_bytes(4, "little"), "big")
        checksum = rotated ^ w0 ^ rev
    return checksum


def make_canrdr_input(rng, scale: int = 1) -> WorkloadInput:
    count = 16 * scale
    data = bytes(rng.randint(0, 255) for _ in range(8 * count))
    out_offset = len(data)
    blob = data + bytes(4 * count)
    return WorkloadInput(data=blob,
                         arg_offsets=(("ptr", 0), ("val", count), ("ptr", out_offset)))


# ----------------------------------------------------------------------
# bitmnp - bit manipulation
# ----------------------------------------------------------------------

def build_bitmnp() -> Function:
    """Per word: mix leading zeros, trailing zeros (via RBIT), and a field."""
    b = IrBuilder("bitmnp", num_params=2)
    words, count = b.params
    acc = b.const(0, "acc")
    i = b.const(0, "i")
    b.label("word")
    w = b.load_idx(words, i, shift=2, name="w")
    lead = b.clz(w, name="lead")
    trail = b.clz(b.rbit(w), name="trail")
    field = b.ubfx(w, 8, 12, name="field")
    mixed = b.add(b.lsl(lead, 6), trail)
    b.assign(acc, b.eor(b.add(acc, mixed), field))
    b.assign(i, b.add(i, 1))
    b.brcond("lo", i, count, "word")
    b.ret(acc)
    return b.build()


def bitmnp_reference(data: bytes, words_off: int, count: int) -> int:
    acc = 0
    for i in range(count):
        w = int.from_bytes(data[words_off + 4 * i:words_off + 4 * i + 4], "little")
        lead = 32 - w.bit_length()
        rbit = int(f"{w:032b}"[::-1], 2)
        trail = 32 - rbit.bit_length()
        field = (w >> 8) & 0xFFF
        acc = ((acc + ((lead << 6) + trail)) ^ field) & MASK32
    return acc


def make_bitmnp_input(rng, scale: int = 1) -> WorkloadInput:
    count = 24 * scale
    words = [rng.randint(0, MASK32) for _ in range(count)]
    blob = b"".join(w.to_bytes(4, "little") for w in words)
    return WorkloadInput(data=blob, arg_offsets=(("ptr", 0), ("val", count)))


# ----------------------------------------------------------------------
# rspeed - road speed calculation
# ----------------------------------------------------------------------

def build_rspeed() -> Function:
    """Average wheel-pulse interval (16-bit wraparound), then km/h-ish scale."""
    b = IrBuilder("rspeed", num_params=2)
    stamps, count = b.params
    total = b.const(0, "total")
    prev = b.load(stamps, 0, size=2, name="prev")
    i = b.const(1, "i")
    b.label("pulse")
    cur = b.load_idx(stamps, i, shift=1, size=2, name="cur")
    delta = b.uxth(b.sub(cur, prev))
    b.assign(total, b.add(total, delta))
    b.assign(prev, cur)
    b.assign(i, b.add(i, 1))
    b.brcond("lo", i, count, "pulse")
    avg = b.udiv(total, b.sub(count, 1), name="avg")
    b.brcond("eq", avg, 0, "stopped")
    speed = b.udiv(b.const(3_600_000), avg, name="speed")
    speed = b.select("hi", speed, 255, 255, speed)
    b.ret(speed)
    b.label("stopped")
    b.ret(b.const(0))
    return b.build()


def rspeed_reference(data: bytes, stamps_off: int, count: int) -> int:
    stamps = [int.from_bytes(data[stamps_off + 2 * k:stamps_off + 2 * k + 2], "little")
              for k in range(count)]
    total = sum((stamps[k] - stamps[k - 1]) & 0xFFFF for k in range(1, count))
    avg = total // (count - 1)
    if avg == 0:
        return 0
    return min(3_600_000 // avg, 255)


def make_rspeed_input(rng, scale: int = 1) -> WorkloadInput:
    count = 32 * scale
    stamp = rng.randint(0, 0xFFFF)
    stamps = []
    for _ in range(count):
        stamps.append(stamp & 0xFFFF)
        stamp += rng.randint(15_000, 40_000)  # exercises 16-bit wraparound
    blob = b"".join(s.to_bytes(2, "little") for s in stamps)
    return WorkloadInput(data=blob, arg_offsets=(("ptr", 0), ("val", count)))


# ----------------------------------------------------------------------
# puwmod - pulse width modulation
# ----------------------------------------------------------------------

def build_puwmod() -> Function:
    """Per channel: decode a 2-bit mode and compute the PWM compare value."""
    b = IrBuilder("puwmod", num_params=3)
    duties, count, period = b.params
    acc = b.const(0, "acc")
    b.label("chan")
    duty = b.load(duties, 0, size=1, name="duty")
    mode = b.lsr(duty, 6, name="mode")
    b.switch(mode, ["off", "fwd", "rvs"])
    # mode 3: fully on
    width = b.mov(period, name="width")
    b.br("emit")
    b.label("off")
    b.assign(width, 0)
    b.br("emit")
    b.label("fwd")
    scaled = b.mul(period, b.and_(duty, 0x3F))
    b.assign(width, b.lsr(scaled, 6))
    b.br("emit")
    b.label("rvs")
    scaled2 = b.mul(period, b.and_(duty, 0x3F))
    b.assign(width, b.sub(period, b.lsr(scaled2, 6)))
    b.label("emit")
    b.store(width, duties, 0, size=1)
    b.assign(acc, b.add(b.ror(acc, 5), width))
    b.assign(duties, b.add(duties, 1))
    b.assign(count, b.sub(count, 1))
    b.brcond("ne", count, 0, "chan")
    b.ret(acc)
    return b.build()


def puwmod_reference(data: bytes, duties_off: int, count: int, period: int) -> int:
    scratch = bytearray(data)
    acc = 0
    for i in range(count):
        duty = scratch[duties_off + i]
        mode = duty >> 6
        if mode == 0:
            width = 0
        elif mode == 1:
            width = (period * (duty & 0x3F)) >> 6
        elif mode == 2:
            width = period - ((period * (duty & 0x3F)) >> 6)
        else:
            width = period
        scratch[duties_off + i] = width & 0xFF
        acc = ((((acc >> 5) | (acc << 27)) & MASK32) + width) & MASK32
    return acc


def make_puwmod_input(rng, scale: int = 1) -> WorkloadInput:
    count = 48 * scale
    blob = bytes(rng.randint(0, 255) for _ in range(count))
    return WorkloadInput(data=blob,
                         arg_offsets=(("ptr", 0), ("val", count), ("val", 200)))


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------

AUTOINDY_SUITE: tuple[Workload, ...] = (
    Workload("ttsprk", "tooth-to-spark ignition timing",
             build_ttsprk, ttsprk_reference, make_ttsprk_input),
    Workload("tblook", "table lookup and interpolation",
             build_tblook, tblook_reference, make_tblook_input),
    Workload("canrdr", "CAN remote data request processing",
             build_canrdr, canrdr_reference, make_canrdr_input),
    Workload("bitmnp", "bit manipulation",
             build_bitmnp, bitmnp_reference, make_bitmnp_input),
    Workload("rspeed", "road speed calculation",
             build_rspeed, rspeed_reference, make_rspeed_input),
    Workload("puwmod", "pulse-width modulation",
             build_puwmod, puwmod_reference, make_puwmod_input),
)

WORKLOADS_BY_NAME = {w.name: w for w in AUTOINDY_SUITE}
