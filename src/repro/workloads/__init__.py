"""AutoIndy-style automotive benchmark kernels and the Table 1 harness."""

from repro.workloads.harness import (
    TABLE1_CONFIGS,
    KernelRun,
    SuiteResult,
    format_table1,
    run_kernel,
    run_suite,
    table1,
)
from repro.workloads.kernels import (
    AUTOINDY_SUITE,
    WORKLOADS_BY_NAME,
    Workload,
    WorkloadInput,
)

__all__ = [
    "TABLE1_CONFIGS", "KernelRun", "SuiteResult", "format_table1",
    "run_kernel", "run_suite", "table1",
    "AUTOINDY_SUITE", "WORKLOADS_BY_NAME", "Workload", "WorkloadInput",
]
