"""repro: reproduction of "Meeting the Embedded Design Needs of Automotive
Applications" (Lyons, DATE 2005).

The library models the full stack the paper's claims rest on:

* :mod:`repro.isa` - ARM / Thumb / Thumb-2 instruction sets with bit-exact
  encoders, an assembler, and execution semantics.
* :mod:`repro.memory` - flash with streaming prefetch, SRAM, caches with
  parity, TCM with ECC, bit-band aliasing, MPUs, and soft-error injection.
* :mod:`repro.core` - ARM7-like, ARM1156-like, and Cortex-M3-like core
  models with per-microarchitecture cycle accounting and interrupt schemes.
* :mod:`repro.codegen` - a small kernel IR lowered to all three ISAs, used
  to regenerate the paper's performance/code-density comparisons.
* :mod:`repro.workloads` - the six AutoIndy-style automotive kernels.
* :mod:`repro.rtos` - an OSEK-like kernel and response-time analysis.
* :mod:`repro.network` - CAN bus simulation and the distributed
  "virtual multi-core" ECU allocation the paper's vision describes.
* :mod:`repro.debug` - JTAG vs single-wire debug and the flash patch unit.
"""

__version__ = "1.0.0"
