"""Disassembler: byte images back to instruction objects and text.

Round-trips the encoders in :mod:`repro.isa.arm32` and
:mod:`repro.isa.thumb`; used for debug output and by the encode/decode
property tests.
"""

from __future__ import annotations

from repro.isa.arm32 import EncodingError, decode_arm
from repro.isa.instructions import ISA_ARM, Instruction
from repro.isa.thumb import is_wide
from repro.isa.thumb_decode import decode_thumb


def disassemble_word(word: int, isa: str, address: int = 0) -> Instruction:
    """Decode a single encoding (already packed; Thumb-2 wide = hw1<<16|hw2)."""
    if isa == ISA_ARM:
        return decode_arm(word, address)
    if word > 0xFFFF:
        return decode_thumb([word >> 16, word & 0xFFFF], address)
    return decode_thumb([word], address)


def disassemble_image(image: bytes, isa: str, base: int = 0) -> list[Instruction]:
    """Linear-sweep disassembly of a byte image.

    Stops at the first undecodable word; literal pools at the end of a
    program typically stop the sweep, which is the desired behaviour for
    dumping small test programs.
    """
    out: list[Instruction] = []
    offset = 0
    if isa == ISA_ARM:
        while offset + 4 <= len(image):
            word = int.from_bytes(image[offset:offset + 4], "little")
            try:
                out.append(decode_arm(word, base + offset))
            except EncodingError:
                # an undecodable word (e.g. a literal pool) ends the
                # sweep; anything else is a decoder bug and propagates
                break
            offset += 4
        return out
    while offset + 2 <= len(image):
        hw1 = int.from_bytes(image[offset:offset + 2], "little")
        halfwords = [hw1]
        width = 2
        if is_wide(hw1):
            if offset + 4 > len(image):
                break
            halfwords.append(int.from_bytes(image[offset + 2:offset + 4], "little"))
            width = 4
        try:
            out.append(decode_thumb(halfwords, base + offset))
        except EncodingError:
            # same contract as the ARM sweep: only a genuine encoding
            # failure stops disassembly; decoder bugs propagate
            break
        offset += width
    return out


def format_listing(instructions: list[Instruction]) -> str:
    """Pretty multi-line listing with addresses and encodings."""
    lines = []
    for ins in instructions:
        addr = f"{ins.address:08x}" if ins.address is not None else "????????"
        enc = f"{ins.encoding:0{ins.size * 2}x}" if ins.encoding is not None else ""
        lines.append(f"{addr}: {enc:<10} {ins.render()}")
    return "\n".join(lines)
