"""Execution semantics for the modelled instruction subset.

The interpreter is a flat dispatch table from mnemonic to a handler.  It is
deliberately separate from any *timing* concern: handlers mutate
architectural state through the :class:`ExecutionContext` protocol and
report what happened in an :class:`Outcome`; each core model then charges
cycles for the outcome according to its own microarchitecture.

The arithmetic helpers (`add_with_carry`, `shift_c`) follow the ARM
Architecture Reference Manual pseudocode so that flag behaviour is exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from repro.isa.conditions import Condition, condition_passed
from repro.isa.instructions import Instruction, Mem
from repro.isa.registers import MASK32, PC, Apsr, RegisterFile


class ExecutionContext(Protocol):
    """What the interpreter needs from a CPU model."""

    regs: RegisterFile
    apsr: Apsr

    def read(self, addr: int, size: int) -> int: ...
    def write(self, addr: int, size: int, value: int) -> None: ...
    def branch(self, target: int) -> None: ...
    def pc_read_value(self) -> int: ...
    def set_interrupts_enabled(self, enabled: bool) -> None: ...
    def begin_it_block(self, firstcond: Condition, mask: str) -> None: ...
    def software_interrupt(self, number: int) -> None: ...
    def wait_for_interrupt(self) -> None: ...


@dataclass
class Outcome:
    """What an instruction did, for the benefit of the cycle model."""

    taken: bool = False        # a branch was taken (PC changed)
    skipped: bool = False      # condition failed; instruction was a NOP
    reads: int = 0             # data-side read accesses performed
    writes: int = 0            # data-side write accesses performed
    regs_transferred: int = 0  # LDM/STM register count
    div_early_exit: int = 0    # divide result bit-length (timing hint)


class UndefinedInstruction(Exception):
    """Raised when the interpreter has no handler for a mnemonic."""


# ----------------------------------------------------------------------
# ARM ARM arithmetic helpers
# ----------------------------------------------------------------------

def to_signed(value: int) -> int:
    """Interpret a 32-bit value as signed."""
    value &= MASK32
    return value - (1 << 32) if value & (1 << 31) else value


def add_with_carry(x: int, y: int, carry_in: int) -> tuple[int, bool, bool]:
    """The ARM AddWithCarry() pseudocode: returns (result, carry, overflow)."""
    x &= MASK32
    y &= MASK32
    unsigned_sum = x + y + carry_in
    signed_sum = to_signed(x) + to_signed(y) + carry_in
    result = unsigned_sum & MASK32
    carry_out = result != unsigned_sum
    overflow = to_signed(result) != signed_sum
    return result, carry_out, overflow


def shift_c(value: int, kind: str, amount: int, carry_in: bool) -> tuple[int, bool]:
    """The ARM Shift_C() pseudocode: returns (result, carry_out)."""
    value &= MASK32
    if amount == 0:
        return value, carry_in
    if kind == "LSL":
        if amount > 32:
            return 0, False
        extended = value << amount
        return extended & MASK32, bool(extended & (1 << 32)) if amount <= 32 else False
    if kind == "LSR":
        if amount > 32:
            return 0, False
        if amount == 32:
            return 0, bool(value >> 31)
        return value >> amount, bool((value >> (amount - 1)) & 1)
    if kind == "ASR":
        signed = to_signed(value)
        if amount >= 32:
            result = MASK32 if signed < 0 else 0
            return result, signed < 0
        return (signed >> amount) & MASK32, bool((value >> (amount - 1)) & 1)
    if kind == "ROR":
        amount %= 32
        if amount == 0:
            return value, bool(value >> 31)
        result = ((value >> amount) | (value << (32 - amount))) & MASK32
        return result, bool(result >> 31)
    raise ValueError(f"bad shift kind {kind!r}")


def count_leading_zeros(value: int) -> int:
    value &= MASK32
    return 32 - value.bit_length()


def bit_reverse32(value: int) -> int:
    value &= MASK32
    return int(f"{value:032b}"[::-1], 2)


def byte_reverse32(value: int) -> int:
    value &= MASK32
    return (
        ((value & 0x000000FF) << 24)
        | ((value & 0x0000FF00) << 8)
        | ((value & 0x00FF0000) >> 8)
        | ((value & 0xFF000000) >> 24)
    )


def byte_reverse_halves(value: int) -> int:
    value &= MASK32
    return (
        ((value & 0x00FF00FF) << 8) | ((value & 0xFF00FF00) >> 8)
    ) & MASK32


# ----------------------------------------------------------------------
# operand helpers
# ----------------------------------------------------------------------

def _read_reg(cpu: ExecutionContext, reg: int) -> int:
    if reg == PC:
        return cpu.pc_read_value()
    return cpu.regs.read(reg)


def _write_result(cpu: ExecutionContext, reg: int, value: int, outcome: Outcome) -> None:
    if reg == PC:
        cpu.branch(value & ~1)
        outcome.taken = True
    else:
        cpu.regs.write(reg, value)


def _operand2(cpu: ExecutionContext, ins: Instruction) -> tuple[int, bool]:
    """Evaluate the flexible second operand: (value, shifter_carry)."""
    carry_in = cpu.apsr.c
    if ins.rm is not None:
        value = _read_reg(cpu, ins.rm)
        if ins.shift is not None:
            amount = ins.shift.amount
            return shift_c(value, ins.shift.kind, amount, carry_in)
        return value, carry_in
    if ins.imm is None:
        raise UndefinedInstruction(f"{ins.mnemonic} missing second operand")
    return ins.imm & MASK32, carry_in


def _mem_address(cpu: ExecutionContext, mem: Mem) -> tuple[int, int | None]:
    """Compute the effective address; returns (address, new_base_or_None)."""
    if mem.rn == PC:
        base = cpu.pc_read_value() & ~3  # literal accesses use Align(PC, 4)
    else:
        base = cpu.regs.read(mem.rn)
    if mem.rm is not None:
        offset = (cpu.regs.read(mem.rm) << mem.shift) & MASK32
    else:
        offset = mem.offset
    offset_addr = (base + offset) & MASK32
    if mem.postindex:
        return base, offset_addr
    if mem.writeback:
        return offset_addr, offset_addr
    return offset_addr, None


_LOAD_SIZES = {"LDR": 4, "LDRB": 1, "LDRH": 2, "LDRSB": 1, "LDRSH": 2}
_STORE_SIZES = {"STR": 4, "STRB": 1, "STRH": 2}
_SIGNED_LOADS = {"LDRSB": 8, "LDRSH": 16}


def _sign_extend(value: int, bits: int) -> int:
    if value & (1 << (bits - 1)):
        value |= MASK32 ^ ((1 << bits) - 1)
    return value & MASK32


# ----------------------------------------------------------------------
# handlers
# ----------------------------------------------------------------------

def _exec_mov(cpu, ins, outcome):
    value, carry = _operand2(cpu, ins)
    if ins.mnemonic == "MVN":
        value = (~value) & MASK32
    _write_result(cpu, ins.rd, value, outcome)
    if ins.setflags:
        cpu.apsr.set_nz(value)
        cpu.apsr.c = carry


def _exec_movw(cpu, ins, outcome):
    cpu.regs.write(ins.rd, ins.imm & 0xFFFF)


def _exec_movt(cpu, ins, outcome):
    low = cpu.regs.read(ins.rd) & 0xFFFF
    cpu.regs.write(ins.rd, ((ins.imm & 0xFFFF) << 16) | low)


def _exec_arith(cpu, ins, outcome):
    op = ins.mnemonic
    x = _read_reg(cpu, ins.rn)
    y, _ = _operand2(cpu, ins)
    carry = cpu.apsr.c
    if op == "ADD":
        result, c, v = add_with_carry(x, y, 0)
    elif op == "ADC":
        result, c, v = add_with_carry(x, y, int(carry))
    elif op == "SUB":
        result, c, v = add_with_carry(x, (~y) & MASK32, 1)
    elif op == "SBC":
        result, c, v = add_with_carry(x, (~y) & MASK32, int(carry))
    elif op == "RSB":
        result, c, v = add_with_carry((~x) & MASK32, y, 1)
    else:
        raise UndefinedInstruction(op)
    _write_result(cpu, ins.rd, result, outcome)
    if ins.setflags:
        cpu.apsr.set_nz(result)
        cpu.apsr.c = c
        cpu.apsr.v = v


def _exec_logic(cpu, ins, outcome):
    op = ins.mnemonic
    x = _read_reg(cpu, ins.rn)
    y, carry = _operand2(cpu, ins)
    if op == "AND":
        result = x & y
    elif op == "ORR":
        result = x | y
    elif op == "EOR":
        result = x ^ y
    elif op == "BIC":
        result = x & ~y
    elif op == "ORN":
        result = x | (~y & MASK32)
    else:
        raise UndefinedInstruction(op)
    result &= MASK32
    _write_result(cpu, ins.rd, result, outcome)
    if ins.setflags:
        cpu.apsr.set_nz(result)
        cpu.apsr.c = carry


def _exec_shift_op(cpu, ins, outcome):
    """Standalone LSL/LSR/ASR/ROR: amount from imm or register."""
    value = _read_reg(cpu, ins.rn)
    if ins.rm is not None:
        amount = cpu.regs.read(ins.rm) & 0xFF
    else:
        amount = ins.imm
    result, carry = shift_c(value, ins.mnemonic, amount, cpu.apsr.c)
    _write_result(cpu, ins.rd, result, outcome)
    if ins.setflags:
        cpu.apsr.set_nz(result)
        cpu.apsr.c = carry


def _exec_compare(cpu, ins, outcome):
    op = ins.mnemonic
    x = _read_reg(cpu, ins.rn)
    y, shifter_carry = _operand2(cpu, ins)
    if op == "CMP":
        result, c, v = add_with_carry(x, (~y) & MASK32, 1)
        cpu.apsr.c, cpu.apsr.v = c, v
    elif op == "CMN":
        result, c, v = add_with_carry(x, y, 0)
        cpu.apsr.c, cpu.apsr.v = c, v
    elif op == "TST":
        result = x & y
        cpu.apsr.c = shifter_carry
    else:  # TEQ
        result = x ^ y
        cpu.apsr.c = shifter_carry
    cpu.apsr.set_nz(result)


def _exec_mul(cpu, ins, outcome):
    result = (cpu.regs.read(ins.rn) * cpu.regs.read(ins.rm)) & MASK32
    _write_result(cpu, ins.rd, result, outcome)
    if ins.setflags:
        cpu.apsr.set_nz(result)


def _exec_mla(cpu, ins, outcome):
    product = cpu.regs.read(ins.rn) * cpu.regs.read(ins.rm)
    acc = cpu.regs.read(ins.ra)
    if ins.mnemonic == "MLA":
        result = (product + acc) & MASK32
    else:  # MLS
        result = (acc - product) & MASK32
    _write_result(cpu, ins.rd, result, outcome)


def _exec_long_mul(cpu, ins, outcome):
    x = cpu.regs.read(ins.rn)
    y = cpu.regs.read(ins.rm)
    if ins.mnemonic == "SMULL":
        product = to_signed(x) * to_signed(y)
    else:
        product = x * y
    product &= (1 << 64) - 1
    cpu.regs.write(ins.rd, product & MASK32)         # RdLo
    cpu.regs.write(ins.ra, (product >> 32) & MASK32)  # RdHi


def _exec_div(cpu, ins, outcome):
    x = cpu.regs.read(ins.rn)
    y = cpu.regs.read(ins.rm)
    if y == 0:
        result = 0  # ARMv7-M default (DIV_0_TRP clear): quotient is zero
    elif ins.mnemonic == "SDIV":
        sx, sy = to_signed(x), to_signed(y)
        quotient = abs(sx) // abs(sy)
        if (sx < 0) != (sy < 0):
            quotient = -quotient
        result = quotient & MASK32
    else:
        result = x // y
    outcome.div_early_exit = max(result.bit_length(), 1)
    _write_result(cpu, ins.rd, result, outcome)


def _exec_unary(cpu, ins, outcome):
    value = _read_reg(cpu, ins.rm if ins.rm is not None else ins.rn)
    op = ins.mnemonic
    if op == "CLZ":
        result = count_leading_zeros(value)
    elif op == "RBIT":
        result = bit_reverse32(value)
    elif op == "REV":
        result = byte_reverse32(value)
    elif op == "REV16":
        result = byte_reverse_halves(value)
    elif op == "SXTB":
        result = _sign_extend(value & 0xFF, 8)
    elif op == "SXTH":
        result = _sign_extend(value & 0xFFFF, 16)
    elif op == "UXTB":
        result = value & 0xFF
    elif op == "UXTH":
        result = value & 0xFFFF
    else:
        raise UndefinedInstruction(op)
    _write_result(cpu, ins.rd, result, outcome)


def _exec_bitfield(cpu, ins, outcome):
    op = ins.mnemonic
    lsb, width = ins.bf_lsb, ins.bf_width
    if lsb is None or width is None or not 0 < width <= 32 - lsb:
        raise UndefinedInstruction(f"{op} bad bitfield [{lsb}, {width}]")
    mask = ((1 << width) - 1) << lsb
    if op == "BFI":
        dest = cpu.regs.read(ins.rd)
        src = cpu.regs.read(ins.rn)
        result = (dest & ~mask) | ((src << lsb) & mask)
    elif op == "BFC":
        result = cpu.regs.read(ins.rd) & ~mask
    elif op == "UBFX":
        result = (cpu.regs.read(ins.rn) & mask) >> lsb
    else:  # SBFX
        field = (cpu.regs.read(ins.rn) & mask) >> lsb
        result = _sign_extend(field, width)
    cpu.regs.write(ins.rd, result & MASK32)


def _exec_load(cpu, ins, outcome):
    address, new_base = _mem_address(cpu, ins.mem)
    size = _LOAD_SIZES[ins.mnemonic]
    value = cpu.read(address, size)
    outcome.reads += 1
    if ins.mnemonic in _SIGNED_LOADS:
        value = _sign_extend(value, _SIGNED_LOADS[ins.mnemonic])
    if new_base is not None and ins.mem.rn != PC:
        cpu.regs.write(ins.mem.rn, new_base)
    _write_result(cpu, ins.rd, value, outcome)


def _exec_store(cpu, ins, outcome):
    address, new_base = _mem_address(cpu, ins.mem)
    size = _STORE_SIZES[ins.mnemonic]
    value = cpu.regs.read(ins.rd)
    masks = {1: 0xFF, 2: 0xFFFF, 4: MASK32}
    cpu.write(address, size, value & masks[size])
    outcome.writes += 1
    if new_base is not None:
        cpu.regs.write(ins.mem.rn, new_base)


def _exec_block(cpu, ins, outcome):
    op = ins.mnemonic
    regs = sorted(ins.reglist)
    count = len(regs)
    outcome.regs_transferred = count
    if op == "PUSH":
        base = cpu.regs.sp - 4 * count
        address = base
        for reg in regs:
            cpu.write(address, 4, cpu.regs.read(reg))
            outcome.writes += 1
            address += 4
        cpu.regs.sp = base
        return
    if op == "POP":
        address = cpu.regs.sp
        branch_target = None
        for reg in regs:
            value = cpu.read(address, 4)
            outcome.reads += 1
            if reg == PC:
                branch_target = value
            else:
                cpu.regs.write(reg, value)
            address += 4
        cpu.regs.sp = address
        if branch_target is not None:
            cpu.branch(branch_target & ~1)
            outcome.taken = True
        return
    base = cpu.regs.read(ins.rn)
    if op == "STM":
        address = base
        for reg in regs:
            cpu.write(address, 4, cpu.regs.read(reg))
            outcome.writes += 1
            address += 4
        if ins.writeback:
            cpu.regs.write(ins.rn, address)
        return
    # LDM
    address = base
    branch_target = None
    loaded_base = False
    for reg in regs:
        value = cpu.read(address, 4)
        outcome.reads += 1
        if reg == PC:
            branch_target = value
        else:
            cpu.regs.write(reg, value)
            if reg == ins.rn:
                loaded_base = True
        address += 4
    if ins.writeback and not loaded_base:
        cpu.regs.write(ins.rn, address)
    if branch_target is not None:
        cpu.branch(branch_target & ~1)
        outcome.taken = True


def _exec_branch(cpu, ins, outcome):
    op = ins.mnemonic
    if op in ("BX", "BLX") and ins.rm is not None:
        target = cpu.regs.read(ins.rm)
        if op == "BLX":
            cpu.regs.lr = (ins.address + ins.size) & MASK32
        cpu.branch(target & ~1)
        outcome.taken = True
        return
    if ins.target is None:
        raise UndefinedInstruction(f"unresolved branch {ins.label!r}")
    if op == "BL":
        cpu.regs.lr = (ins.address + ins.size) & MASK32
    cpu.branch(ins.target)
    outcome.taken = True


def _exec_table_branch(cpu, ins, outcome):
    base = _read_reg(cpu, ins.rn)
    index = cpu.regs.read(ins.rm)
    if ins.mnemonic == "TBB":
        entry = cpu.read((base + index) & MASK32, 1)
    else:  # TBH
        entry = cpu.read((base + index * 2) & MASK32, 2)
    outcome.reads += 1
    cpu.branch((cpu.pc_read_value() + entry * 2) & MASK32)
    outcome.taken = True


def _exec_it(cpu, ins, outcome):
    cpu.begin_it_block(ins.cond, ins.it_mask)


def _exec_adr(cpu, ins, outcome):
    base = cpu.pc_read_value() & ~3
    cpu.regs.write(ins.rd, (base + (ins.imm or 0)) & MASK32)


def _exec_system(cpu, ins, outcome):
    op = ins.mnemonic
    if op in ("NOP", "DSB", "ISB", "BKPT"):
        return
    if op == "CPSID":
        cpu.set_interrupts_enabled(False)
    elif op == "CPSIE":
        cpu.set_interrupts_enabled(True)
    elif op == "SVC":
        cpu.software_interrupt(ins.imm or 0)
    elif op == "WFI":
        cpu.wait_for_interrupt()
    else:
        raise UndefinedInstruction(op)


_DISPATCH = {
    "MOV": _exec_mov, "MVN": _exec_mov,
    "MOVW": _exec_movw, "MOVT": _exec_movt,
    "ADD": _exec_arith, "ADC": _exec_arith, "SUB": _exec_arith,
    "SBC": _exec_arith, "RSB": _exec_arith,
    "AND": _exec_logic, "ORR": _exec_logic, "EOR": _exec_logic,
    "BIC": _exec_logic, "ORN": _exec_logic,
    "LSL": _exec_shift_op, "LSR": _exec_shift_op,
    "ASR": _exec_shift_op, "ROR": _exec_shift_op,
    "CMP": _exec_compare, "CMN": _exec_compare,
    "TST": _exec_compare, "TEQ": _exec_compare,
    "MUL": _exec_mul, "MLA": _exec_mla, "MLS": _exec_mla,
    "UMULL": _exec_long_mul, "SMULL": _exec_long_mul,
    "SDIV": _exec_div, "UDIV": _exec_div,
    "CLZ": _exec_unary, "RBIT": _exec_unary, "REV": _exec_unary,
    "REV16": _exec_unary, "SXTB": _exec_unary, "SXTH": _exec_unary,
    "UXTB": _exec_unary, "UXTH": _exec_unary,
    "BFI": _exec_bitfield, "BFC": _exec_bitfield,
    "UBFX": _exec_bitfield, "SBFX": _exec_bitfield,
    "LDR": _exec_load, "LDRB": _exec_load, "LDRH": _exec_load,
    "LDRSB": _exec_load, "LDRSH": _exec_load,
    "STR": _exec_store, "STRB": _exec_store, "STRH": _exec_store,
    "LDM": _exec_block, "STM": _exec_block,
    "PUSH": _exec_block, "POP": _exec_block,
    "B": _exec_branch, "BL": _exec_branch, "BX": _exec_branch, "BLX": _exec_branch,
    "TBB": _exec_table_branch, "TBH": _exec_table_branch,
    "IT": _exec_it, "ADR": _exec_adr,
    "NOP": _exec_system, "CPSID": _exec_system, "CPSIE": _exec_system,
    "SVC": _exec_system, "WFI": _exec_system, "BKPT": _exec_system,
    "DSB": _exec_system, "ISB": _exec_system,
}


def execute(cpu: ExecutionContext, ins: Instruction, condition: Condition | None = None) -> Outcome:
    """Execute one instruction against the CPU state.

    ``condition`` overrides the instruction's own condition field (used for
    IT-block predication on Thumb-2 cores).  Returns the :class:`Outcome`
    that cycle models consume.
    """
    outcome = Outcome()
    cond = condition if condition is not None else ins.cond
    if ins.mnemonic != "IT" and cond != Condition.AL:
        if not condition_passed(cond, cpu.apsr):
            outcome.skipped = True
            return outcome
    handler = _DISPATCH.get(ins.mnemonic)
    if handler is None:
        raise UndefinedInstruction(ins.mnemonic)
    handler(cpu, ins, outcome)
    return outcome
