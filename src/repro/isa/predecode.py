"""Predecode pass: compile instructions into bound micro-op closures.

The baseline interpreter (:func:`repro.isa.semantics.execute`) re-resolves
the condition code, the operand shape, and the semantics handler on every
single step, which makes large campaign runs (Table 1 sweeps, Figure 4
interrupt storms) interpreter-bound rather than model-bound.  This module
compiles each :class:`~repro.isa.instructions.Instruction` **once** into a
:class:`MicroOp`:

* the condition check is hoisted into a prebound predicate (``None`` for
  unconditional instructions, so the hot loop pays nothing for AL);
* operand decode is folded at compile time - immediates are pre-masked,
  PC-relative literal addresses become constants, register numbers become
  captured locals indexing ``cpu.regs.values`` directly;
* the semantics dispatch dict lookup disappears: each micro-op carries a
  specialised closure ``exec(cpu, outcome)``.

Anything the specialiser does not recognise (data ops targeting the PC,
table branches, block transfers touching the PC) falls back to a thin
wrapper around the interpreter's own handler, so predecoded execution is
*architecturally identical* to the slow path by construction; the property
tests in ``tests/test_fastpath_properties.py`` assert bit-equality of
registers, flags, cycles, and traces on randomised programs.  LDM/STM and
write-back addressing modes are specialised here (not fallback), so block
copies and pointer-walking loops stay on the fast path.

Each micro-op also carries a *kind* - ``"alu"`` (pure register state),
``"mem"`` (touches the data bus, cannot branch) or ``"ctl"`` (may branch,
halt, sleep, predicate, or is a fallback whose behaviour is unknown) - and
a derived ``chainable`` flag.  The superblock engine
(``BaseCpu._run_superblocks``) links chainable micro-ops to their
fall-through successor and executes straight-line runs as a single Python
loop with no per-step dispatch; ``ctl`` micro-ops terminate a superblock.

The table is keyed by program address and cached on the
:class:`~repro.isa.assembler.Program`, so every core model running the same
program shares one predecode.  Per-core *timing* is bound separately (see
``BaseCpu._bind_uop``); this module is timing-free, like the rest of
:mod:`repro.isa`.
"""

from __future__ import annotations

from typing import Callable

from repro.isa.conditions import Condition
from repro.isa.instructions import ISA_ARM, Instruction
from repro.isa.registers import MASK32, PC
from repro.isa.semantics import (
    _DISPATCH,
    _LOAD_SIZES,
    _SIGNED_LOADS,
    _STORE_SIZES,
    Outcome,
    UndefinedInstruction,
    _sign_extend,
    add_with_carry,
    bit_reverse32,
    byte_reverse32,
    byte_reverse_halves,
    count_leading_zeros,
    shift_c,
    to_signed,
)

ExecFn = Callable[[object, Outcome], None]

#: Per-condition flag predicates (AL is represented as ``None``: no check).
COND_CHECKS: dict[Condition, Callable] = {
    Condition.EQ: lambda f: f.z,
    Condition.NE: lambda f: not f.z,
    Condition.CS: lambda f: f.c,
    Condition.CC: lambda f: not f.c,
    Condition.MI: lambda f: f.n,
    Condition.PL: lambda f: not f.n,
    Condition.VS: lambda f: f.v,
    Condition.VC: lambda f: not f.v,
    Condition.HI: lambda f: f.c and not f.z,
    Condition.LS: lambda f: not (f.c and not f.z),
    Condition.GE: lambda f: f.n == f.v,
    Condition.LT: lambda f: f.n != f.v,
    Condition.GT: lambda f: not f.z and f.n == f.v,
    Condition.LE: lambda f: f.z or f.n != f.v,
}


class MicroOp:
    """One predecoded instruction, ready for the fast execution loop.

    ``kind`` classifies the bound closure for the superblock engine:

    * ``"alu"``  - mutates registers/flags only; cannot branch, halt,
      sleep, touch memory, or start an IT block;
    * ``"mem"``  - additionally performs data-side accesses (so the
      executor must account ``_data_stalls``), still cannot branch;
    * ``"ctl"``  - everything else: branches, IT, WFI, SVC, CPS, POP-to-PC
      and every generic fallback (whose behaviour is not statically known).

    Only ``alu``/``mem`` micro-ops are ``chainable`` into superblocks.

    ``branch_target`` is the statically resolved branch destination for
    direct ``B``/``BL`` micro-ops (``None`` otherwise), and
    ``is_back_edge`` marks a direct ``B`` whose target is at or before its
    own address - the loop back-edge shape the trace-superblock fuser
    chains across (:mod:`repro.core.superblock`).
    """

    __slots__ = ("ins", "address", "size", "next_pc", "cond_check", "exec",
                 "is_it", "kind", "chainable", "is_block_op",
                 "branch_target", "is_back_edge")

    def __init__(self, ins: Instruction, exec_fn: ExecFn, kind: str = "ctl") -> None:
        self.ins = ins
        self.address = ins.address
        self.size = ins.size
        self.next_pc = ins.address + ins.size
        self.is_it = ins.mnemonic == "IT"
        cond = ins.cond
        if self.is_it or cond == Condition.AL:
            self.cond_check = None
        else:
            self.cond_check = COND_CHECKS[cond]
        self.exec = exec_fn
        self.kind = kind
        self.is_block_op = ins.mnemonic in ("LDM", "STM", "PUSH", "POP")
        self.chainable = kind != "ctl"
        if ins.mnemonic in ("B", "BL") and ins.target is not None and ins.rm is None:
            self.branch_target = ins.target & MASK32
        else:
            self.branch_target = None
        self.is_back_edge = (self.branch_target is not None
                             and ins.mnemonic == "B"
                             and self.branch_target <= self.address)


# ----------------------------------------------------------------------
# specialisers: each returns a closure or None (None -> generic fallback)
# ----------------------------------------------------------------------

_SIGN_BIT = 0x8000_0000


def _no_pc(*regs: int | None) -> bool:
    return all(r is None or r != PC for r in regs)


def _compile_mov(ins: Instruction):
    rd, rm = ins.rd, ins.rm
    if not _no_pc(rd, rm) or rd is None:
        return None
    mvn = ins.mnemonic == "MVN"
    setflags = ins.setflags
    if rm is None:
        if ins.imm is None:
            return None
        value = ins.imm & MASK32
        if mvn:
            value = (~value) & MASK32
        if not setflags:
            def ex(cpu, outcome, rd=rd, value=value):
                cpu.regs.values[rd] = value
            return ex
        n, z = value >= _SIGN_BIT, value == 0

        def ex(cpu, outcome, rd=rd, value=value, n=n, z=z):
            cpu.regs.values[rd] = value
            apsr = cpu.apsr
            apsr.n = n
            apsr.z = z
        return ex
    shift = ins.shift
    if shift is None:
        def ex(cpu, outcome, rd=rd, rm=rm, mvn=mvn, setflags=setflags):
            value = cpu.regs.values[rm]
            if mvn:
                value = (~value) & MASK32
            cpu.regs.values[rd] = value
            if setflags:
                apsr = cpu.apsr
                apsr.n = value >= _SIGN_BIT
                apsr.z = value == 0
        return ex
    kind, amount = shift.kind, shift.amount

    def ex(cpu, outcome, rd=rd, rm=rm, kind=kind, amount=amount,
           mvn=mvn, setflags=setflags):
        apsr = cpu.apsr
        value, carry = shift_c(cpu.regs.values[rm], kind, amount, apsr.c)
        if mvn:
            value = (~value) & MASK32
        cpu.regs.values[rd] = value
        if setflags:
            apsr.n = value >= _SIGN_BIT
            apsr.z = value == 0
            apsr.c = carry
    return ex


def _compile_arith(ins: Instruction):
    op = ins.mnemonic
    rd, rn, rm = ins.rd, ins.rn, ins.rm
    if not _no_pc(rd, rn, rm) or rd is None or rn is None:
        return None
    if rm is not None and ins.shift is not None:
        if op not in ("ADD", "SUB"):
            return None  # shifted ADC/SBC/RSB: keep the generic path
        # shifted-operand ADD/SUB: the shifter carry is discarded (flags
        # come from the adder), exactly as _exec_arith computes it
        kind, amount = ins.shift.kind, ins.shift.amount
        sub = op == "SUB"

        def ex(cpu, outcome, rd=rd, rn=rn, rm=rm, kind=kind, amount=amount,
               sub=sub, setflags=ins.setflags):
            rv = cpu.regs.values
            apsr = cpu.apsr
            y, _ = shift_c(rv[rm], kind, amount, apsr.c)
            x = rv[rn]
            if sub:
                unsigned_sum = x + (y ^ MASK32) + 1
                overflow = ((x ^ y) & (x ^ (unsigned_sum & MASK32)) & _SIGN_BIT) != 0
            else:
                unsigned_sum = x + y
                overflow = ((~(x ^ y)) & (x ^ (unsigned_sum & MASK32)) & _SIGN_BIT) != 0
            result = unsigned_sum & MASK32
            rv[rd] = result
            if setflags:
                apsr.n = result >= _SIGN_BIT
                apsr.z = result == 0
                apsr.c = unsigned_sum > MASK32
                apsr.v = overflow
        return ex
    if rm is None and ins.imm is None:
        return None
    imm = None if rm is not None else ins.imm & MASK32
    setflags = ins.setflags
    if op == "ADD":
        if not setflags:
            def ex(cpu, outcome, rd=rd, rn=rn, rm=rm, imm=imm):
                rv = cpu.regs.values
                rv[rd] = (rv[rn] + (imm if rm is None else rv[rm])) & MASK32
            return ex

        def ex(cpu, outcome, rd=rd, rn=rn, rm=rm, imm=imm):
            rv = cpu.regs.values
            x = rv[rn]
            y = imm if rm is None else rv[rm]
            unsigned_sum = x + y
            result = unsigned_sum & MASK32
            rv[rd] = result
            apsr = cpu.apsr
            apsr.n = result >= _SIGN_BIT
            apsr.z = result == 0
            apsr.c = unsigned_sum > MASK32
            apsr.v = ((~(x ^ y)) & (x ^ result) & _SIGN_BIT) != 0
        return ex
    if op == "SUB":
        if not setflags:
            def ex(cpu, outcome, rd=rd, rn=rn, rm=rm, imm=imm):
                rv = cpu.regs.values
                rv[rd] = (rv[rn] - (imm if rm is None else rv[rm])) & MASK32
            return ex

        def ex(cpu, outcome, rd=rd, rn=rn, rm=rm, imm=imm):
            rv = cpu.regs.values
            x = rv[rn]
            y = imm if rm is None else rv[rm]
            unsigned_sum = x + (y ^ MASK32) + 1
            result = unsigned_sum & MASK32
            rv[rd] = result
            apsr = cpu.apsr
            apsr.n = result >= _SIGN_BIT
            apsr.z = result == 0
            apsr.c = unsigned_sum > MASK32
            apsr.v = ((x ^ y) & (x ^ result) & _SIGN_BIT) != 0
        return ex
    # ADC / SBC / RSB: rarer - reuse the reference helper, still prebound.

    def ex(cpu, outcome, op=op, rd=rd, rn=rn, rm=rm, imm=imm, setflags=setflags):
        rv = cpu.regs.values
        x = rv[rn]
        y = imm if rm is None else rv[rm]
        apsr = cpu.apsr
        if op == "ADC":
            result, c, v = add_with_carry(x, y, int(apsr.c))
        elif op == "SBC":
            result, c, v = add_with_carry(x, (~y) & MASK32, int(apsr.c))
        else:  # RSB
            result, c, v = add_with_carry((~x) & MASK32, y, 1)
        rv[rd] = result
        if setflags:
            apsr.n = result >= _SIGN_BIT
            apsr.z = result == 0
            apsr.c = c
            apsr.v = v
    return ex


def _compile_logic(ins: Instruction):
    op = ins.mnemonic
    rd, rn, rm = ins.rd, ins.rn, ins.rm
    if not _no_pc(rd, rn, rm) or rd is None or rn is None:
        return None
    if rm is None and ins.imm is None:
        return None
    shift = ins.shift
    if rm is not None and shift is not None:
        kind, amount = shift.kind, shift.amount

        def ex(cpu, outcome, op=op, rd=rd, rn=rn, rm=rm, kind=kind,
               amount=amount, setflags=ins.setflags):
            rv = cpu.regs.values
            apsr = cpu.apsr
            y, carry = shift_c(rv[rm], kind, amount, apsr.c)
            x = rv[rn]
            if op == "AND":
                result = x & y
            elif op == "ORR":
                result = x | y
            elif op == "EOR":
                result = x ^ y
            elif op == "BIC":
                result = x & ~y
            else:  # ORN
                result = x | (~y & MASK32)
            result &= MASK32
            rv[rd] = result
            if setflags:
                apsr.n = result >= _SIGN_BIT
                apsr.z = result == 0
                apsr.c = carry
        return ex
    imm = None if rm is not None else ins.imm & MASK32

    def ex(cpu, outcome, op=op, rd=rd, rn=rn, rm=rm, imm=imm, setflags=ins.setflags):
        rv = cpu.regs.values
        x = rv[rn]
        y = imm if rm is None else rv[rm]
        if op == "AND":
            result = x & y
        elif op == "ORR":
            result = x | y
        elif op == "EOR":
            result = x ^ y
        elif op == "BIC":
            result = x & ~y
        else:  # ORN
            result = x | (~y & MASK32)
        result &= MASK32
        rv[rd] = result
        if setflags:
            apsr = cpu.apsr
            apsr.n = result >= _SIGN_BIT
            apsr.z = result == 0
    return ex


def _compile_shift_op(ins: Instruction):
    op = ins.mnemonic
    rd, rn, rm = ins.rd, ins.rn, ins.rm
    if not _no_pc(rd, rn, rm) or rd is None or rn is None:
        return None
    if rm is None and ins.imm is None:
        return None
    amount_const = None if rm is not None else ins.imm

    def ex(cpu, outcome, op=op, rd=rd, rn=rn, rm=rm, amount_const=amount_const,
           setflags=ins.setflags):
        rv = cpu.regs.values
        apsr = cpu.apsr
        amount = amount_const if rm is None else rv[rm] & 0xFF
        result, carry = shift_c(rv[rn], op, amount, apsr.c)
        rv[rd] = result
        if setflags:
            apsr.n = result >= _SIGN_BIT
            apsr.z = result == 0
            apsr.c = carry
    return ex


def _compile_compare(ins: Instruction):
    op = ins.mnemonic
    rn, rm = ins.rn, ins.rm
    if not _no_pc(rn, rm) or rn is None:
        return None
    if rm is not None and ins.shift is not None:
        return None
    if rm is None and ins.imm is None:
        return None
    imm = None if rm is not None else ins.imm & MASK32
    if op == "CMP":
        def ex(cpu, outcome, rn=rn, rm=rm, imm=imm):
            rv = cpu.regs.values
            x = rv[rn]
            y = imm if rm is None else rv[rm]
            unsigned_sum = x + (y ^ MASK32) + 1
            result = unsigned_sum & MASK32
            apsr = cpu.apsr
            apsr.n = result >= _SIGN_BIT
            apsr.z = result == 0
            apsr.c = unsigned_sum > MASK32
            apsr.v = ((x ^ y) & (x ^ result) & _SIGN_BIT) != 0
        return ex
    if op == "CMN":
        def ex(cpu, outcome, rn=rn, rm=rm, imm=imm):
            rv = cpu.regs.values
            x = rv[rn]
            y = imm if rm is None else rv[rm]
            unsigned_sum = x + y
            result = unsigned_sum & MASK32
            apsr = cpu.apsr
            apsr.n = result >= _SIGN_BIT
            apsr.z = result == 0
            apsr.c = unsigned_sum > MASK32
            apsr.v = ((~(x ^ y)) & (x ^ result) & _SIGN_BIT) != 0
        return ex

    def ex(cpu, outcome, op=op, rn=rn, rm=rm, imm=imm):
        rv = cpu.regs.values
        x = rv[rn]
        y = imm if rm is None else rv[rm]
        result = (x & y) if op == "TST" else (x ^ y)
        apsr = cpu.apsr
        apsr.n = (result & _SIGN_BIT) != 0
        apsr.z = (result & MASK32) == 0
    return ex


def _compile_mul(ins: Instruction):
    op = ins.mnemonic
    rd, rn, rm, ra = ins.rd, ins.rn, ins.rm, ins.ra
    if not _no_pc(rd, rn, rm, ra) or rd is None or rn is None or rm is None:
        return None
    if op == "MUL":
        def ex(cpu, outcome, rd=rd, rn=rn, rm=rm, setflags=ins.setflags):
            rv = cpu.regs.values
            result = (rv[rn] * rv[rm]) & MASK32
            rv[rd] = result
            if setflags:
                apsr = cpu.apsr
                apsr.n = result >= _SIGN_BIT
                apsr.z = result == 0
        return ex
    if op in ("MLA", "MLS"):
        if ra is None:
            return None
        mls = op == "MLS"

        def ex(cpu, outcome, rd=rd, rn=rn, rm=rm, ra=ra, mls=mls):
            rv = cpu.regs.values
            product = rv[rn] * rv[rm]
            acc = rv[ra]
            rv[rd] = ((acc - product) if mls else (product + acc)) & MASK32
        return ex
    if op in ("UMULL", "SMULL"):
        if ra is None:
            return None
        signed = op == "SMULL"

        def ex(cpu, outcome, rd=rd, rn=rn, rm=rm, ra=ra, signed=signed):
            rv = cpu.regs.values
            x, y = rv[rn], rv[rm]
            if signed:
                product = to_signed(x) * to_signed(y)
            else:
                product = x * y
            product &= (1 << 64) - 1
            rv[rd] = product & MASK32
            rv[ra] = (product >> 32) & MASK32
        return ex
    # SDIV / UDIV
    signed = op == "SDIV"

    def ex(cpu, outcome, rd=rd, rn=rn, rm=rm, signed=signed):
        rv = cpu.regs.values
        x, y = rv[rn], rv[rm]
        if y == 0:
            result = 0
        elif signed:
            sx, sy = to_signed(x), to_signed(y)
            quotient = abs(sx) // abs(sy)
            if (sx < 0) != (sy < 0):
                quotient = -quotient
            result = quotient & MASK32
        else:
            result = x // y
        outcome.div_early_exit = max(result.bit_length(), 1)
        rv[rd] = result
    return ex


_UNARY_FUNCS = {
    "CLZ": count_leading_zeros,
    "RBIT": bit_reverse32,
    "REV": byte_reverse32,
    "REV16": byte_reverse_halves,
}


def _compile_unary(ins: Instruction):
    op = ins.mnemonic
    rd = ins.rd
    src = ins.rm if ins.rm is not None else ins.rn
    if not _no_pc(rd, src) or rd is None or src is None:
        return None
    if op in _UNARY_FUNCS:
        fn = _UNARY_FUNCS[op]

        def ex(cpu, outcome, rd=rd, src=src, fn=fn):
            rv = cpu.regs.values
            rv[rd] = fn(rv[src])
        return ex
    if op in ("SXTB", "SXTH"):
        bits = 8 if op == "SXTB" else 16
        mask = (1 << bits) - 1

        def ex(cpu, outcome, rd=rd, src=src, bits=bits, mask=mask):
            rv = cpu.regs.values
            rv[rd] = _sign_extend(rv[src] & mask, bits)
        return ex
    mask = 0xFF if op == "UXTB" else 0xFFFF

    def ex(cpu, outcome, rd=rd, src=src, mask=mask):
        rv = cpu.regs.values
        rv[rd] = rv[src] & mask
    return ex


def _compile_bitfield(ins: Instruction):
    op = ins.mnemonic
    rd, rn = ins.rd, ins.rn
    lsb, width = ins.bf_lsb, ins.bf_width
    if not _no_pc(rd, rn) or rd is None:
        return None
    if lsb is None or width is None or not 0 < width <= 32 - lsb:
        return None  # generic path raises UndefinedInstruction at runtime
    mask = ((1 << width) - 1) << lsb
    if op == "BFC":
        inv = (~mask) & MASK32

        def ex(cpu, outcome, rd=rd, inv=inv):
            rv = cpu.regs.values
            rv[rd] = rv[rd] & inv
        return ex
    if rn is None:
        return None
    if op == "BFI":
        inv = (~mask) & MASK32

        def ex(cpu, outcome, rd=rd, rn=rn, lsb=lsb, mask=mask, inv=inv):
            rv = cpu.regs.values
            rv[rd] = (rv[rd] & inv) | ((rv[rn] << lsb) & mask)
        return ex
    if op == "UBFX":
        def ex(cpu, outcome, rd=rd, rn=rn, lsb=lsb, mask=mask):
            rv = cpu.regs.values
            rv[rd] = (rv[rn] & mask) >> lsb
        return ex
    # SBFX

    def ex(cpu, outcome, rd=rd, rn=rn, lsb=lsb, mask=mask, width=width):
        rv = cpu.regs.values
        rv[rd] = _sign_extend((rv[rn] & mask) >> lsb, width)
    return ex


def _compile_load_wb(ins: Instruction):
    """Pre-indexed (``[rn, #off]!``) and post-indexed (``[rn], #off``) loads.

    Matches ``_exec_load`` exactly: the base register is written *before*
    the destination, so ``ldr rX, [rX], #4`` leaves the loaded value in rX.
    """
    mem = ins.mem
    rd, rn = ins.rd, mem.rn
    if rn == PC or (mem.rm is not None and mem.rm == PC):
        return None
    size = _LOAD_SIZES[ins.mnemonic]
    sign_bits = _SIGNED_LOADS.get(ins.mnemonic)
    rm, lshift, offset = mem.rm, mem.shift, mem.offset
    postindex = mem.postindex

    def ex(cpu, outcome, rd=rd, rn=rn, rm=rm, lshift=lshift, offset=offset,
           size=size, sign_bits=sign_bits, postindex=postindex):
        rv = cpu.regs.values
        base = rv[rn]
        if rm is not None:
            offset = (rv[rm] << lshift) & MASK32
        offset_addr = (base + offset) & MASK32
        address = base if postindex else offset_addr
        value = cpu.read(address, size)
        outcome.reads += 1
        if sign_bits is not None:
            value = _sign_extend(value, sign_bits)
        rv[rn] = offset_addr
        rv[rd] = value & MASK32
    return ex


def _compile_store_wb(ins: Instruction):
    """Pre/post-indexed stores; base write-back happens after the store."""
    mem = ins.mem
    rd, rn = ins.rd, mem.rn
    if rn == PC or (mem.rm is not None and mem.rm == PC):
        return None
    size = _STORE_SIZES[ins.mnemonic]
    vmask = {1: 0xFF, 2: 0xFFFF, 4: MASK32}[size]
    rm, lshift, offset = mem.rm, mem.shift, mem.offset
    postindex = mem.postindex

    def ex(cpu, outcome, rd=rd, rn=rn, rm=rm, lshift=lshift, offset=offset,
           size=size, vmask=vmask, postindex=postindex):
        rv = cpu.regs.values
        base = rv[rn]
        if rm is not None:
            offset = (rv[rm] << lshift) & MASK32
        offset_addr = (base + offset) & MASK32
        cpu.write(base if postindex else offset_addr, size, rv[rd] & vmask)
        outcome.writes += 1
        rv[rn] = offset_addr
    return ex


def _compile_load(ins: Instruction, isa: str):
    mem = ins.mem
    rd = ins.rd
    if mem is None or rd is None or rd == PC:
        return None
    if mem.writeback or mem.postindex:
        return _compile_load_wb(ins)
    size = _LOAD_SIZES[ins.mnemonic]
    sign_bits = _SIGNED_LOADS.get(ins.mnemonic)
    if mem.rn == PC:
        if mem.rm is not None:
            return None
        pc_off = 8 if isa == ISA_ARM else 4
        address = (((ins.address + pc_off) & ~3) + mem.offset) & MASK32

        def ex(cpu, outcome, rd=rd, address=address, size=size, sign_bits=sign_bits):
            value = cpu.read(address, size)
            outcome.reads += 1
            if sign_bits is not None:
                value = _sign_extend(value, sign_bits)
            cpu.regs.values[rd] = value & MASK32
        return ex
    rn = mem.rn
    if mem.rm is None:
        offset = mem.offset

        def ex(cpu, outcome, rd=rd, rn=rn, offset=offset, size=size,
               sign_bits=sign_bits):
            value = cpu.read((cpu.regs.values[rn] + offset) & MASK32, size)
            outcome.reads += 1
            if sign_bits is not None:
                value = _sign_extend(value, sign_bits)
            cpu.regs.values[rd] = value & MASK32
        return ex
    if mem.rm == PC:
        return None
    rm, lshift = mem.rm, mem.shift

    def ex(cpu, outcome, rd=rd, rn=rn, rm=rm, lshift=lshift, size=size,
           sign_bits=sign_bits):
        rv = cpu.regs.values
        addr = (rv[rn] + ((rv[rm] << lshift) & MASK32)) & MASK32
        value = cpu.read(addr, size)
        outcome.reads += 1
        if sign_bits is not None:
            value = _sign_extend(value, sign_bits)
        rv[rd] = value & MASK32
    return ex


def _compile_store(ins: Instruction):
    mem = ins.mem
    rd = ins.rd
    if mem is None or rd is None or rd == PC or mem.rn == PC:
        return None
    if mem.writeback or mem.postindex:
        return _compile_store_wb(ins)
    size = _STORE_SIZES[ins.mnemonic]
    vmask = {1: 0xFF, 2: 0xFFFF, 4: MASK32}[size]
    rn = mem.rn
    if mem.rm is None:
        offset = mem.offset

        def ex(cpu, outcome, rd=rd, rn=rn, offset=offset, size=size, vmask=vmask):
            rv = cpu.regs.values
            cpu.write((rv[rn] + offset) & MASK32, size, rv[rd] & vmask)
            outcome.writes += 1
        return ex
    if mem.rm == PC:
        return None
    rm, lshift = mem.rm, mem.shift

    def ex(cpu, outcome, rd=rd, rn=rn, rm=rm, lshift=lshift, size=size, vmask=vmask):
        rv = cpu.regs.values
        addr = (rv[rn] + ((rv[rm] << lshift) & MASK32)) & MASK32
        cpu.write(addr, size, rv[rd] & vmask)
        outcome.writes += 1
    return ex


def _compile_push_pop(ins: Instruction):
    regs = tuple(sorted(ins.reglist))
    count = len(regs)
    if ins.mnemonic == "PUSH":
        if PC in regs:
            return None

        def ex(cpu, outcome, regs=regs, count=count):
            outcome.regs_transferred = count
            rv = cpu.regs.values
            base = cpu.regs.sp - 4 * count
            address = base
            write = cpu.write
            for reg in regs:
                write(address, 4, rv[reg])
                address += 4
            outcome.writes += count
            cpu.regs.sp = base
        return ex
    # POP
    pops_pc = PC in regs
    data_regs = tuple(r for r in regs if r != PC)

    def ex(cpu, outcome, regs=data_regs, count=count, pops_pc=pops_pc):
        outcome.regs_transferred = count
        rv = cpu.regs.values
        address = cpu.regs.sp
        read = cpu.read
        for reg in regs:
            rv[reg] = read(address, 4) & MASK32
            address += 4
        if pops_pc:
            target = read(address, 4)
            address += 4
        outcome.reads += count
        cpu.regs.sp = address
        if pops_pc:
            cpu.branch(target & ~1)
            outcome.taken = True
    return ex


def _compile_ldm_stm(ins: Instruction):
    """LDM/STM (IA) without the PC in the transfer list.

    Mirrors ``_exec_block``: registers transfer in ascending order, and an
    LDM that loads its own base register suppresses the write-back (the
    loaded value wins) - that suppression is folded at compile time.
    """
    rn = ins.rn
    regs = tuple(sorted(ins.reglist))
    if rn is None or rn == PC or PC in regs:
        return None
    count = len(regs)
    if ins.mnemonic == "STM":
        writeback = ins.writeback

        def ex(cpu, outcome, rn=rn, regs=regs, count=count, writeback=writeback):
            outcome.regs_transferred = count
            rv = cpu.regs.values
            address = rv[rn]
            write = cpu.write
            for reg in regs:
                write(address, 4, rv[reg])
                address += 4
            outcome.writes += count
            if writeback:
                rv[rn] = address & MASK32
        return ex
    # LDM: write-back is suppressed when the base is in the transfer list
    writeback = ins.writeback and rn not in regs

    def ex(cpu, outcome, rn=rn, regs=regs, count=count, writeback=writeback):
        outcome.regs_transferred = count
        rv = cpu.regs.values
        address = rv[rn]
        read = cpu.read
        for reg in regs:
            rv[reg] = read(address, 4) & MASK32
            address += 4
        outcome.reads += count
        if writeback:
            rv[rn] = address & MASK32
    return ex


def _compile_branch(ins: Instruction):
    op = ins.mnemonic
    if op in ("BX", "BLX") and ins.rm is not None:
        if ins.rm == PC:
            return None
        rm = ins.rm
        if op == "BLX":
            ret = (ins.address + ins.size) & MASK32

            def ex(cpu, outcome, rm=rm, ret=ret):
                target = cpu.regs.values[rm]
                cpu.regs.lr = ret
                cpu.branch(target & ~1)
                outcome.taken = True
            return ex

        def ex(cpu, outcome, rm=rm):
            cpu.branch(cpu.regs.values[rm] & ~1)
            outcome.taken = True
        return ex
    if ins.target is None:
        return None  # unresolved label: generic path raises
    target = ins.target
    if op == "BL":
        ret = (ins.address + ins.size) & MASK32

        def ex(cpu, outcome, target=target, ret=ret):
            cpu.regs.lr = ret
            cpu.branch(target)
            outcome.taken = True
        return ex
    if op == "B":
        def ex(cpu, outcome, target=target):
            cpu.branch(target)
            outcome.taken = True
        return ex
    return None


def _compile_system(ins: Instruction):
    op = ins.mnemonic
    if op in ("NOP", "DSB", "ISB", "BKPT"):
        def ex(cpu, outcome):
            pass
        return ex
    if op in ("CPSID", "CPSIE"):
        enabled = op == "CPSIE"

        def ex(cpu, outcome, enabled=enabled):
            cpu.set_interrupts_enabled(enabled)
        return ex
    if op == "SVC":
        number = ins.imm or 0

        def ex(cpu, outcome, number=number):
            cpu.software_interrupt(number)
        return ex
    if op == "WFI":
        def ex(cpu, outcome):
            cpu.wait_for_interrupt()
        return ex
    return None


def _compile_misc(ins: Instruction, isa: str):
    op = ins.mnemonic
    if op == "MOVW":
        rd = ins.rd
        if rd is None or rd == PC or ins.imm is None:
            return None  # imm=None raises in the reference handler
        value = ins.imm & 0xFFFF

        def ex(cpu, outcome, rd=rd, value=value):
            cpu.regs.values[rd] = value
        return ex
    if op == "MOVT":
        rd = ins.rd
        if rd is None or rd == PC or ins.imm is None:
            return None  # imm=None raises in the reference handler
        high = (ins.imm & 0xFFFF) << 16

        def ex(cpu, outcome, rd=rd, high=high):
            rv = cpu.regs.values
            rv[rd] = high | (rv[rd] & 0xFFFF)
        return ex
    if op == "ADR":
        rd = ins.rd
        if rd is None or rd == PC:
            return None
        pc_off = 8 if isa == ISA_ARM else 4
        value = (((ins.address + pc_off) & ~3) + (ins.imm or 0)) & MASK32

        def ex(cpu, outcome, rd=rd, value=value):
            cpu.regs.values[rd] = value
        return ex
    if op == "IT":
        firstcond, mask = ins.cond, ins.it_mask

        def ex(cpu, outcome, firstcond=firstcond, mask=mask):
            cpu.begin_it_block(firstcond, mask)
        return ex
    return None


_ARITH_OPS = frozenset({"ADD", "ADC", "SUB", "SBC", "RSB"})
_LOGIC_OPS = frozenset({"AND", "ORR", "EOR", "BIC", "ORN"})
_SHIFT_OPS = frozenset({"LSL", "LSR", "ASR", "ROR"})
_COMPARE_OPS = frozenset({"CMP", "CMN", "TST", "TEQ"})
_MUL_OPS = frozenset({"MUL", "MLA", "MLS", "UMULL", "SMULL", "SDIV", "UDIV"})
_UNARY_OPS = frozenset({"CLZ", "RBIT", "REV", "REV16", "SXTB", "SXTH", "UXTB", "UXTH"})
_BITFIELD_OPS = frozenset({"BFI", "BFC", "UBFX", "SBFX"})
_SYSTEM_OPS = frozenset({"NOP", "DSB", "ISB", "BKPT", "CPSID", "CPSIE", "SVC", "WFI"})

#: specialised mnemonics that touch the data bus but never the PC
_MEM_OPS = frozenset({"LDR", "LDRB", "LDRH", "LDRSB", "LDRSH",
                      "STR", "STRB", "STRH", "LDM", "STM", "PUSH", "POP"})
#: specialised mnemonics that may branch, sleep, predicate, or mask IRQs
_CTL_OPS = frozenset({"B", "BL", "BX", "BLX", "TBB", "TBH", "IT",
                      "WFI", "CPSID", "CPSIE", "SVC"})


def compile_exec(ins: Instruction, isa: str) -> tuple[ExecFn, str]:
    """Compile one instruction into ``(exec(cpu, outcome), kind)``.

    Falls back to the interpreter's own handler (prebound, so the dispatch
    dict lookup still disappears) whenever the operand shape is outside the
    specialised fast cases; fallbacks are always classified ``"ctl"``
    because their behaviour is not statically known.
    """
    op = ins.mnemonic
    specialised = None
    if op in ("MOV", "MVN"):
        specialised = _compile_mov(ins)
    elif op in _ARITH_OPS:
        specialised = _compile_arith(ins)
    elif op in _LOGIC_OPS:
        specialised = _compile_logic(ins)
    elif op in _SHIFT_OPS:
        specialised = _compile_shift_op(ins)
    elif op in _COMPARE_OPS:
        specialised = _compile_compare(ins)
    elif op in _MUL_OPS:
        specialised = _compile_mul(ins)
    elif op in _UNARY_OPS:
        specialised = _compile_unary(ins)
    elif op in _BITFIELD_OPS:
        specialised = _compile_bitfield(ins)
    elif op in ("LDR", "LDRB", "LDRH", "LDRSB", "LDRSH"):
        specialised = _compile_load(ins, isa)
    elif op in ("STR", "STRB", "STRH"):
        specialised = _compile_store(ins)
    elif op in ("PUSH", "POP"):
        specialised = _compile_push_pop(ins)
    elif op in ("LDM", "STM"):
        specialised = _compile_ldm_stm(ins)
    elif op in ("B", "BL", "BX", "BLX"):
        specialised = _compile_branch(ins)
    elif op in _SYSTEM_OPS:
        specialised = _compile_system(ins)
    elif op in ("MOVW", "MOVT", "ADR", "IT"):
        specialised = _compile_misc(ins, isa)
    if specialised is not None:
        if op in _CTL_OPS or (op == "POP" and PC in ins.reglist):
            kind = "ctl"
        elif op in _MEM_OPS:
            kind = "mem"
        else:
            kind = "alu"
        return specialised, kind
    handler = _DISPATCH.get(op)
    if handler is None:
        def ex(cpu, outcome, op=op):
            raise UndefinedInstruction(op)
        return ex, "ctl"

    def ex(cpu, outcome, handler=handler, ins=ins):
        handler(cpu, ins, outcome)
    return ex, "ctl"


def compile_uop(ins: Instruction, isa: str) -> MicroOp:
    """Compile one instruction straight into a classified :class:`MicroOp`."""
    exec_fn, kind = compile_exec(ins, isa)
    return MicroOp(ins, exec_fn, kind)


def predecode(program) -> dict[int, MicroOp]:
    """Predecode every instruction of ``program`` into a micro-op table.

    The table is built from the program's execution index (the same map
    ``instruction_at`` consults) and cached on the program object: all
    cores executing the same program (e.g. a whole campaign's worth of CPU
    instances) share one pass.  The cache is keyed on the index's identity,
    so *reassigning* ``_by_address`` (the merge-two-images pattern) forces
    a rebuild; instructions *added* to the existing index are predecoded
    lazily by the execution loop on first dispatch.  Replacing the decoded
    instruction at an already-predecoded address in place is not detected
    - patch bytes (the FPB route) or reassign the index instead.
    """
    cached = getattr(program, "_uop_table", None)
    if cached is not None and getattr(program, "_uop_index", None) is program._by_address:
        return cached
    table = {
        address: compile_uop(ins, program.isa)
        for address, ins in program._by_address.items()
    }
    program._uop_table = table
    program._uop_index = program._by_address
    return table
