"""Two-pass assembler and program container for all three instruction sets.

Two entry points:

* :func:`assemble_items` — assemble a list of already-built items (labels,
  :class:`~repro.isa.instructions.Instruction` objects, directives).  This is
  the path the code generators use.
* :func:`assemble` — parse UAL-style assembly text into items first.  This is
  the path tests and examples use.

The layout pass is iterative with monotone growth: Thumb-2 branches start at
their narrow width and widen until every label-relative operand fits, which
always converges.  Literal-pool requests (``LDR rd, =const``) are collected
and dumped at each ``.ltorg`` directive or at the end of the program; this is
the mechanism experiment E3 (flash streaming disruption, paper §2.2) probes.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.isa import arm32, thumb
from repro.isa.conditions import Condition
from repro.isa.instructions import (
    ISA_ARM,
    ISA_THUMB,
    ISA_THUMB2,
    Instruction,
    Mem,
    Shift,
)
from repro.isa.registers import MASK32, PC, parse_register

# ----------------------------------------------------------------------
# items
# ----------------------------------------------------------------------


@dataclass
class Label:
    name: str


@dataclass
class Directive:
    kind: str            # 'word' | 'byte' | 'half' | 'align' | 'space' | 'ltorg'
    value: int | str = 0


@dataclass
class LiteralRef:
    """``LDR rd, =value`` pseudo-instruction, resolved against a pool."""

    instruction: Instruction  # the LDR, with mem=None until resolution
    value: int | str          # constant or label name


@dataclass
class DeltaDirective:
    """A label-difference datum: (target - base) // scale.

    Used for TBB/TBH jump tables, whose entries are halfword counts from
    the table base to each case label.
    """

    target: str
    base: str
    scale: int = 2
    size: int = 1  # 1 for TBB entries, 2 for TBH entries


AsmItem = Label | Directive | Instruction | LiteralRef | DeltaDirective


@dataclass
class DataWord:
    """A literal-pool or .word datum placed in the code stream."""

    address: int
    value: int
    size: int = 4


@dataclass
class Program:
    """An assembled program: instructions + embedded data, ready to run."""

    isa: str
    base: int
    instructions: list[Instruction] = field(default_factory=list)
    data: list[DataWord] = field(default_factory=list)
    symbols: dict[str, int] = field(default_factory=dict)
    size: int = 0

    def __post_init__(self) -> None:
        self._by_address: dict[int, Instruction] = {}

    def _index(self) -> None:
        self._by_address = {ins.address: ins for ins in self.instructions}

    def instruction_at(self, address: int) -> Instruction | None:
        return self._by_address.get(address)

    @property
    def code_bytes(self) -> int:
        """Bytes of instruction encodings (excludes embedded data)."""
        return sum(ins.size for ins in self.instructions)

    @property
    def total_bytes(self) -> int:
        """Full image size: instructions plus literal pools and .word data."""
        return self.size

    @property
    def literal_bytes(self) -> int:
        return sum(d.size for d in self.data)

    def image(self) -> bytes:
        """Byte image of the program (little-endian), for loading into flash."""
        out = bytearray(self.size)
        for ins in self.instructions:
            offset = ins.address - self.base
            encoding = ins.encoding or 0
            out[offset:offset + ins.size] = _encoding_bytes(self.isa, ins, encoding)
        for datum in self.data:
            offset = datum.address - self.base
            out[offset:offset + datum.size] = datum.value.to_bytes(datum.size, "little")
        return bytes(out)

    def end_address(self) -> int:
        return self.base + self.size


def _encoding_bytes(isa: str, ins: Instruction, encoding: int) -> bytes:
    if isa == ISA_ARM:
        return encoding.to_bytes(4, "little")
    if ins.size == 2:
        return encoding.to_bytes(2, "little")
    # 32-bit Thumb encodings are stored first-halfword-first.
    return (encoding >> 16).to_bytes(2, "little") + (encoding & 0xFFFF).to_bytes(2, "little")


# ----------------------------------------------------------------------
# layout + link
# ----------------------------------------------------------------------

class AssemblyError(Exception):
    """Malformed source, unresolvable label, or out-of-range operand."""


def _min_alignment(isa: str) -> int:
    return 4 if isa == ISA_ARM else 2


def _nominal_size(isa: str, ins: Instruction) -> int:
    if isa == ISA_ARM:
        return 4
    if isa == ISA_THUMB:
        return 4 if ins.mnemonic == "BL" else 2
    if ins.is_branch() and ins.mnemonic in ("B", "BL") and ins.target is None:
        # label branches start narrow (B) / wide (BL); may widen during layout
        return 4 if ins.mnemonic == "BL" else 2
    return thumb.thumb2_width(ins)


def assemble_items(items: list[AsmItem], isa: str, base: int = 0) -> Program:
    """Lay out, link, and encode a list of assembly items."""
    if isa not in (ISA_ARM, ISA_THUMB, ISA_THUMB2):
        raise AssemblyError(f"unknown ISA {isa!r}")
    if base % 4:
        raise AssemblyError("base address must be word-aligned")

    work = list(items)
    widened: set[int] = set()  # indices of branches forced wide

    for _ in range(64):  # layout relaxation passes
        layout = _layout(work, isa, base, widened)
        grew = _check_ranges(layout, isa, widened)
        if not grew:
            return _finalize(layout, isa, base)
    raise AssemblyError("layout did not converge")


@dataclass
class _Layout:
    items: list[AsmItem]
    addresses: dict[int, int]          # item index -> address
    sizes: dict[int, int]              # item index -> encoded size
    symbols: dict[str, int]
    pools: list[tuple[int, dict[int | str, int]]]  # (pool base addr, value->addr)
    literal_home: dict[int, int]       # item index of LiteralRef -> literal addr
    size: int


def _layout(items: list[AsmItem], isa: str, base: int, widened: set[int]) -> _Layout:
    address = base
    addresses: dict[int, int] = {}
    sizes: dict[int, int] = {}
    symbols: dict[str, int] = {}
    pending_literals: list[tuple[int, int | str]] = []  # (item index, value)
    pools: list[tuple[int, dict[int | str, int]]] = []
    literal_home: dict[int, int] = {}

    def dump_pool() -> None:
        nonlocal address
        if not pending_literals:
            return
        address = (address + 3) & ~3
        pool_base = address
        placed: dict[int | str, int] = {}
        for index, value in pending_literals:
            if value not in placed:
                placed[value] = address
                address += 4
            literal_home[index] = placed[value]
        pools.append((pool_base, placed))
        pending_literals.clear()

    for index, item in enumerate(items):
        if isinstance(item, Label):
            symbols[item.name] = address
            continue
        if isinstance(item, Directive):
            if item.kind == "align":
                step = int(item.value) or 4
                address = (address + step - 1) & ~(step - 1)
            elif item.kind == "space":
                address += int(item.value)
            elif item.kind == "word":
                address = (address + 3) & ~3
                addresses[index] = address
                address += 4
            elif item.kind == "half":
                address = (address + 1) & ~1
                addresses[index] = address
                address += 2
            elif item.kind == "byte":
                addresses[index] = address
                address += 1
            elif item.kind == "ltorg":
                dump_pool()
            else:
                raise AssemblyError(f"unknown directive {item.kind!r}")
            continue
        if isinstance(item, DeltaDirective):
            addresses[index] = address
            sizes[index] = item.size
            address += item.size
            continue
        if isinstance(item, LiteralRef):
            if isa == ISA_ARM:
                size = 4
            elif isa == ISA_THUMB2 and index in widened:
                size = 4
            else:
                size = 2
            addresses[index] = address
            sizes[index] = size
            pending_literals.append((index, item.value))
            address += size
            continue
        ins = item
        if isa == ISA_ARM and address % 4:
            address = (address + 3) & ~3
        size = 4 if index in widened else _nominal_size(isa, ins)
        addresses[index] = address
        sizes[index] = size
        address += size
    dump_pool()
    return _Layout(items=items, addresses=addresses, sizes=sizes, symbols=symbols,
                   pools=pools, literal_home=literal_home, size=address - base)


def _literal_offset(isa: str, instr_addr: int, literal_addr: int) -> int:
    if isa == ISA_ARM:
        return literal_addr - (instr_addr + 8)
    return literal_addr - ((instr_addr + 4) & ~3)


def _check_ranges(layout: _Layout, isa: str, widened: set[int]) -> bool:
    """Widen anything out of range; True when the layout changed."""
    grew = False
    if isa == ISA_ARM:
        return False
    for index, item in enumerate(layout.items):
        if index in widened:
            continue
        if isinstance(item, LiteralRef):
            literal_addr = layout.literal_home[index]
            offset = _literal_offset(isa, layout.addresses[index], literal_addr)
            fits_narrow = 0 <= offset <= 1020 and offset % 4 == 0
            if not fits_narrow:
                if isa == ISA_THUMB:
                    raise AssemblyError(
                        f"literal pool out of range for 16-bit Thumb (offset {offset})")
                widened.add(index)
                grew = True
            continue
        if not isinstance(item, Instruction):
            continue
        ins = item
        if ins.mnemonic == "B" and ins.label is not None:
            target = layout.symbols.get(ins.label)
            if target is None:
                raise AssemblyError(f"undefined label {ins.label!r}")
            offset = target - (layout.addresses[index] + 4)
            if ins.cond == Condition.AL:
                fits = -2048 <= offset <= 2046
            else:
                fits = -256 <= offset <= 254
            if isa == ISA_THUMB and not fits:
                raise AssemblyError(
                    f"branch to {ins.label!r} out of range for 16-bit Thumb ({offset})")
            if isa == ISA_THUMB2 and not fits:
                widened.add(index)
                grew = True
    return grew


def _finalize(layout: _Layout, isa: str, base: int) -> Program:
    program = Program(isa=isa, base=base, size=layout.size)
    forced_wide = {index for index, size in layout.sizes.items()
                   if size == 4 and isinstance(layout.items[index], Instruction)}
    for index, item in enumerate(layout.items):
        if isinstance(item, Label):
            continue
        if isinstance(item, Directive):
            if item.kind in ("word", "half", "byte"):
                size = {"word": 4, "half": 2, "byte": 1}[item.kind]
                value = item.value
                if isinstance(value, str):
                    if value not in layout.symbols:
                        raise AssemblyError(f"undefined symbol {value!r}")
                    value = layout.symbols[value]
                program.data.append(DataWord(address=layout.addresses[index],
                                             value=int(value) & MASK32, size=size))
            continue
        if isinstance(item, DeltaDirective):
            for symbol in (item.target, item.base):
                if symbol not in layout.symbols:
                    raise AssemblyError(f"undefined symbol {symbol!r}")
            delta = layout.symbols[item.target] - layout.symbols[item.base]
            if delta < 0 or delta % item.scale:
                raise AssemblyError(
                    f"delta {item.target}-{item.base}={delta} not a positive "
                    f"multiple of {item.scale}")
            program.data.append(DataWord(address=layout.addresses[index],
                                         value=delta // item.scale, size=item.size))
            continue
        if isinstance(item, LiteralRef):
            ins = item.instruction
            address = layout.addresses[index]
            offset = _literal_offset(isa, address, layout.literal_home[index])
            resolved = ins.copy(mem=Mem(rn=PC, offset=offset), address=address,
                                wide=layout.sizes[index] == 4 and isa == ISA_THUMB2)
            _encode(resolved, isa)
            if resolved.size != layout.sizes[index]:
                raise AssemblyError("literal load size changed during encoding")
            program.instructions.append(resolved)
            continue
        ins = item.copy()
        ins.address = layout.addresses[index]
        if ins.label is not None:
            if ins.label not in layout.symbols:
                raise AssemblyError(f"undefined label {ins.label!r}")
            if ins.is_branch():
                ins.target = layout.symbols[ins.label]
            elif ins.mnemonic == "ADR":
                target = layout.symbols[ins.label]
                ins.imm = target - ((ins.address + (8 if isa == ISA_ARM else 4)) & ~3)
        if isa == ISA_THUMB2 and index in forced_wide:
            ins.wide = True
        _encode(ins, isa)
        if ins.size != layout.sizes[index]:
            raise AssemblyError(
                f"{ins.mnemonic} at {ins.address:#x}: size changed during encoding "
                f"({layout.sizes[index]} -> {ins.size})")
        program.instructions.append(ins)
    # literal pool data
    for pool_base, placed in layout.pools:
        for value, address in placed.items():
            if isinstance(value, str):
                if value not in layout.symbols:
                    raise AssemblyError(f"undefined literal symbol {value!r}")
                value = layout.symbols[value]
            program.data.append(DataWord(address=address, value=int(value) & MASK32))
    program.symbols = dict(layout.symbols)
    program._index()
    return program




def _encode(ins: Instruction, isa: str) -> None:
    if isa == ISA_ARM:
        ins.encoding = arm32.encode_arm(ins)
        ins.size = 4
        return
    if isa == ISA_THUMB:
        halfwords = thumb.encode_thumb(ins)
    else:
        halfwords = thumb.encode_thumb2(ins)
    if len(halfwords) == 1:
        ins.encoding = halfwords[0]
        ins.size = 2
    else:
        ins.encoding = (halfwords[0] << 16) | halfwords[1]
        ins.size = 4


# ----------------------------------------------------------------------
# text parser
# ----------------------------------------------------------------------

_BASE_MNEMONICS = sorted(
    ["MOVW", "MOVT", "MOV", "MVN", "ADD", "ADC", "SUB", "SBC", "RSB",
     "AND", "ORR", "EOR", "BIC", "ORN", "LSL", "LSR", "ASR", "ROR",
     "CMP", "CMN", "TST", "TEQ", "MUL", "MLA", "MLS", "UMULL", "SMULL",
     "SDIV", "UDIV", "CLZ", "RBIT", "REV16", "REV", "SXTB", "SXTH",
     "UXTB", "UXTH", "BFI", "BFC", "UBFX", "SBFX",
     "LDRSB", "LDRSH", "LDRB", "LDRH", "LDR", "STRB", "STRH", "STR",
     "LDM", "STM", "PUSH", "POP", "BLX", "BL", "BX", "B",
     "TBB", "TBH", "ADR", "NOP", "CPSID", "CPSIE", "SVC", "WFI",
     "BKPT", "DSB", "ISB"],
    key=len, reverse=True,
)

_FLAG_CAPABLE = {"MOV", "MVN", "ADD", "ADC", "SUB", "SBC", "RSB", "AND", "ORR",
                 "EOR", "BIC", "ORN", "LSL", "LSR", "ASR", "ROR", "MUL"}

_COND_NAMES = {c.name for c in Condition} | {"HS", "LO"}


def _split_mnemonic(token: str) -> tuple[str, bool, Condition]:
    """Split 'ADDSEQ' -> ('ADD', True, EQ).  Raises on no match."""
    token = token.upper().replace(".W", "").replace(".N", "")
    if token.startswith("IT") and all(c in "TE" for c in token[2:]):
        return "IT", False, Condition.AL
    for base in _BASE_MNEMONICS:
        if not token.startswith(base):
            continue
        rest = token[len(base):]
        setflags = False
        if rest.startswith("S") and base in _FLAG_CAPABLE:
            candidate = rest[1:]
            if candidate == "" or candidate in _COND_NAMES:
                setflags = True
                rest = candidate
        if rest == "":
            return base, setflags, Condition.AL
        if rest in _COND_NAMES:
            return base, setflags, Condition.parse(rest)
    raise AssemblyError(f"unknown mnemonic {token!r}")


_NUMBER_RE = re.compile(r"^[+-]?(0[xX][0-9a-fA-F]+|\d+)$")


def _parse_number(text: str) -> int:
    text = text.strip()
    if not _NUMBER_RE.match(text):
        raise AssemblyError(f"bad number {text!r}")
    return int(text, 0)


def _split_operands(text: str) -> list[str]:
    """Split on commas not inside [] or {}."""
    parts: list[str] = []
    depth = 0
    current = ""
    for ch in text:
        if ch in "[{":
            depth += 1
        elif ch in "]}":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append(current.strip())
            current = ""
        else:
            current += ch
    if current.strip():
        parts.append(current.strip())
    return parts


def _parse_reglist(text: str) -> tuple[int, ...]:
    inner = text.strip()[1:-1]
    regs: list[int] = []
    for part in inner.split(","):
        part = part.strip()
        if "-" in part:
            lo_name, hi_name = part.split("-")
            lo = parse_register(lo_name)
            hi = parse_register(hi_name)
            regs.extend(range(lo, hi + 1))
        elif part:
            regs.append(parse_register(part))
    return tuple(sorted(set(regs)))


def _parse_shift(text: str) -> Shift:
    match = re.match(r"^(lsl|lsr|asr|ror)\s+#(\d+)$", text.strip(), re.IGNORECASE)
    if not match:
        raise AssemblyError(f"bad shift {text!r}")
    return Shift(match.group(1).upper(), int(match.group(2)))


def _parse_mem(operands: list[str], start: int) -> tuple[Mem, int]:
    """Parse a bracketed address starting at operands[start]."""
    text = operands[start]
    consumed = 1
    writeback = text.endswith("!")
    if writeback:
        text = text[:-1].strip()
    if not (text.startswith("[") and text.endswith("]")):
        raise AssemblyError(f"bad address {text!r}")
    inner = _split_operands(text[1:-1])
    rn = parse_register(inner[0])
    offset = 0
    rm = None
    shift = 0
    postindex = False
    if len(inner) >= 2:
        second = inner[1].strip()
        if second.startswith("#"):
            offset = _parse_number(second[1:])
        else:
            rm = parse_register(second)
            if len(inner) == 3:
                parsed = _parse_shift(inner[2])
                if parsed.kind != "LSL":
                    raise AssemblyError("only LSL index shifts are supported")
                shift = parsed.amount
    # post-index: [rn], #imm
    if start + consumed < len(operands) and operands[start + consumed].startswith("#") and len(inner) == 1 and not writeback:
        offset = _parse_number(operands[start + consumed][1:])
        postindex = True
        consumed += 1
    return Mem(rn=rn, offset=offset, rm=rm, shift=shift,
               writeback=writeback, postindex=postindex), consumed


def parse_line(line: str) -> list[AsmItem]:
    """Parse one line of assembly into zero or more items."""
    for comment_lead in (";", "@", "//"):
        if comment_lead in line:
            line = line.split(comment_lead, 1)[0]
    line = line.strip()
    items: list[AsmItem] = []
    while ":" in line:
        name, line = line.split(":", 1)
        if not re.match(r"^[A-Za-z_.$][\w.$]*$", name.strip()):
            raise AssemblyError(f"bad label {name!r}")
        items.append(Label(name.strip()))
        line = line.strip()
    if not line:
        return items
    if line.startswith("."):
        directive, _, rest = line.partition(" ")
        kind = directive[1:].lower()
        rest = rest.strip()
        if kind in ("word", "byte", "half", "hword", "short"):
            kind = {"hword": "half", "short": "half"}.get(kind, kind)
            for value_text in rest.split(","):
                value_text = value_text.strip()
                if _NUMBER_RE.match(value_text):
                    items.append(Directive(kind, _parse_number(value_text)))
                else:
                    items.append(Directive(kind, value_text))
        elif kind in ("align", "space", "skip"):
            kind = "space" if kind == "skip" else kind
            items.append(Directive(kind, _parse_number(rest) if rest else 4))
        elif kind in ("ltorg", "pool"):
            items.append(Directive("ltorg"))
        else:
            raise AssemblyError(f"unknown directive .{kind}")
        return items
    mnemonic_text, _, operand_text = line.partition(" ")
    base, setflags, cond = _split_mnemonic(mnemonic_text)
    operands = _split_operands(operand_text.strip())
    items.append(_build_instruction(base, setflags, cond, operands, mnemonic_text))
    return items


def _build_instruction(base: str, setflags: bool, cond: Condition,
                       operands: list[str], raw: str) -> Instruction | LiteralRef:
    wide = raw.upper().endswith(".W")

    def reg(i: int) -> int:
        return parse_register(operands[i])

    if base == "IT":
        pattern = "T" + raw.upper().replace(".W", "")[2:]
        if not operands:
            raise AssemblyError("IT needs a condition")
        return Instruction("IT", cond=Condition.parse(operands[0]), it_mask=pattern)
    if base in ("NOP", "WFI", "DSB", "ISB", "CPSID", "CPSIE"):
        return Instruction(base, cond=cond)
    if base in ("SVC", "BKPT"):
        return Instruction(base, cond=cond, imm=_parse_number(operands[0].lstrip("#")))
    if base in ("PUSH", "POP"):
        return Instruction(base, cond=cond, reglist=_parse_reglist(operands[0]))
    if base in ("LDM", "STM"):
        rn_text = operands[0]
        writeback = rn_text.endswith("!")
        rn = parse_register(rn_text.rstrip("!"))
        return Instruction(base, cond=cond, rn=rn, writeback=writeback,
                           reglist=_parse_reglist(operands[1]))
    if base in ("B", "BL"):
        return Instruction(base, cond=cond, label=operands[0], wide=wide)
    if base in ("BX", "BLX"):
        return Instruction(base, cond=cond, rm=reg(0))
    if base in ("TBB", "TBH"):
        mem, _ = _parse_mem(operands, 0)
        return Instruction(base, cond=cond, rn=mem.rn, rm=mem.rm)
    if base == "ADR":
        return Instruction("ADR", cond=cond, rd=reg(0), label=operands[1])
    if base in ("LDR", "LDRB", "LDRH", "LDRSB", "LDRSH", "STR", "STRB", "STRH"):
        rd = reg(0)
        if base == "LDR" and operands[1].startswith("="):
            value_text = operands[1][1:]
            ins = Instruction("LDR", cond=cond, rd=rd, wide=wide)
            if _NUMBER_RE.match(value_text):
                return LiteralRef(ins, _parse_number(value_text))
            return LiteralRef(ins, value_text)
        if base == "LDR" and not operands[1].startswith("["):
            # LDR rd, label  -> pc-relative literal-style load of label address
            return LiteralRef(Instruction("LDR", cond=cond, rd=rd, wide=wide), operands[1])
        mem, _ = _parse_mem(operands, 1)
        return Instruction(base, cond=cond, rd=rd, mem=mem, wide=wide)
    if base in ("MOVW", "MOVT"):
        return Instruction(base, cond=cond, rd=reg(0),
                           imm=_parse_number(operands[1].lstrip("#")))
    if base in ("BFI", "BFC", "UBFX", "SBFX"):
        if base == "BFC":
            return Instruction(base, cond=cond, rd=reg(0),
                               bf_lsb=_parse_number(operands[1].lstrip("#")),
                               bf_width=_parse_number(operands[2].lstrip("#")))
        return Instruction(base, cond=cond, rd=reg(0), rn=reg(1),
                           bf_lsb=_parse_number(operands[2].lstrip("#")),
                           bf_width=_parse_number(operands[3].lstrip("#")))
    if base in ("MLA", "MLS"):
        return Instruction(base, cond=cond, rd=reg(0), rn=reg(1), rm=reg(2), ra=reg(3))
    if base in ("UMULL", "SMULL"):
        return Instruction(base, cond=cond, setflags=setflags,
                           rd=reg(0), ra=reg(1), rn=reg(2), rm=reg(3))
    if base in ("CLZ", "RBIT", "REV", "REV16", "SXTB", "SXTH", "UXTB", "UXTH"):
        return Instruction(base, cond=cond, rd=reg(0), rm=reg(1))
    if base in ("CMP", "CMN", "TST", "TEQ"):
        rn = reg(0)
        if operands[1].startswith("#"):
            return Instruction(base, cond=cond, rn=rn, imm=_parse_number(operands[1][1:]))
        shift = _parse_shift(operands[2]) if len(operands) == 3 else None
        return Instruction(base, cond=cond, rn=rn, rm=reg(1), shift=shift)
    if base in ("MOV", "MVN"):
        rd = reg(0)
        if operands[1].startswith("#"):
            return Instruction(base, cond=cond, setflags=setflags, rd=rd,
                               imm=_parse_number(operands[1][1:]), wide=wide)
        shift = _parse_shift(operands[2]) if len(operands) == 3 else None
        return Instruction(base, cond=cond, setflags=setflags, rd=rd, rm=reg(1),
                           shift=shift, wide=wide)
    if base in ("LSL", "LSR", "ASR", "ROR"):
        rd, rn = reg(0), reg(1)
        if len(operands) == 2:  # two-operand form: LSLS rd, rm
            return Instruction(base, cond=cond, setflags=setflags, rd=rd, rn=rd, rm=rn)
        if operands[2].startswith("#"):
            return Instruction(base, cond=cond, setflags=setflags, rd=rd, rn=rn,
                               imm=_parse_number(operands[2][1:]), wide=wide)
        return Instruction(base, cond=cond, setflags=setflags, rd=rd, rn=rn, rm=reg(2))
    if base in ("MUL", "SDIV", "UDIV"):
        if len(operands) == 2:
            return Instruction(base, cond=cond, setflags=setflags,
                               rd=reg(0), rn=reg(0), rm=reg(1))
        return Instruction(base, cond=cond, setflags=setflags,
                           rd=reg(0), rn=reg(1), rm=reg(2))
    if base in ("ADD", "ADC", "SUB", "SBC", "RSB", "AND", "ORR", "EOR", "BIC", "ORN"):
        rd = reg(0)
        if len(operands) == 2:  # two-operand: ADD rd, op2
            operands = [operands[0], operands[0], operands[1]]
        rn = reg(1)
        if operands[2].startswith("#"):
            return Instruction(base, cond=cond, setflags=setflags, rd=rd, rn=rn,
                               imm=_parse_number(operands[2][1:]), wide=wide)
        shift = _parse_shift(operands[3]) if len(operands) == 4 else None
        return Instruction(base, cond=cond, setflags=setflags, rd=rd, rn=rn,
                           rm=reg(2), shift=shift, wide=wide)
    raise AssemblyError(f"cannot build instruction for {base}")


def assemble(source: str, isa: str, base: int = 0) -> Program:
    """Assemble UAL-style source text for the given instruction set."""
    items: list[AsmItem] = []
    for lineno, line in enumerate(source.splitlines(), start=1):
        try:
            items.extend(parse_line(line))
        except AssemblyError as exc:
            raise AssemblyError(f"line {lineno}: {exc}") from exc
    return assemble_items(items, isa, base)
