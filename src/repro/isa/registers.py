"""Register file and program-status registers for the ARM-style cores."""

from __future__ import annotations

from dataclasses import dataclass, field

MASK32 = 0xFFFFFFFF

# Architectural register numbers.
R0, R1, R2, R3, R4, R5, R6, R7 = range(8)
R8, R9, R10, R11, R12 = range(8, 13)
SP = 13
LR = 14
PC = 15

REGISTER_NAMES = {
    **{i: f"r{i}" for i in range(13)},
    SP: "sp",
    LR: "lr",
    PC: "pc",
}

NAME_TO_REGISTER = {name: num for num, name in REGISTER_NAMES.items()}
NAME_TO_REGISTER.update({f"r{SP}": SP, f"r{LR}": LR, f"r{PC}": PC})


def register_name(num: int) -> str:
    """Human-readable name for a register number."""
    return REGISTER_NAMES[num]


def parse_register(name: str) -> int:
    """Parse ``r0``..``r12``, ``sp``, ``lr``, ``pc`` (case-insensitive)."""
    key = name.strip().lower()
    if key not in NAME_TO_REGISTER:
        raise ValueError(f"unknown register: {name!r}")
    return NAME_TO_REGISTER[key]


@dataclass
class Apsr:
    """Application program status register: the N/Z/C/V condition flags.

    Only the flags the cores in this library use are modelled; the Q
    saturation flag and GE lanes of the real APSR are out of scope.
    """

    n: bool = False
    z: bool = False
    c: bool = False
    v: bool = False

    def set_nz(self, result: int) -> None:
        """Update N and Z from a 32-bit result, leaving C and V alone."""
        result &= MASK32
        self.n = bool(result >> 31)
        self.z = result == 0

    def to_word(self) -> int:
        """Pack into the architectural xPSR[31:28] layout."""
        return (int(self.n) << 31) | (int(self.z) << 30) | (int(self.c) << 29) | (int(self.v) << 28)

    @classmethod
    def from_word(cls, word: int) -> "Apsr":
        return cls(
            n=bool(word & (1 << 31)),
            z=bool(word & (1 << 30)),
            c=bool(word & (1 << 29)),
            v=bool(word & (1 << 28)),
        )

    def copy(self) -> "Apsr":
        return Apsr(self.n, self.z, self.c, self.v)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return "".join(
            ch.upper() if flag else ch.lower()
            for ch, flag in (("n", self.n), ("z", self.z), ("c", self.c), ("v", self.v))
        )


@dataclass
class RegisterFile:
    """Sixteen 32-bit general-purpose registers (r0-r12, sp, lr, pc).

    All writes are masked to 32 bits.  The PC value visible to instructions
    (``pc + 8`` in ARM state, ``pc + 4`` in Thumb state) is applied by the
    executing core, not here; this class stores the raw next-fetch address.
    """

    values: list[int] = field(default_factory=lambda: [0] * 16)

    def read(self, reg: int) -> int:
        self._check(reg)
        return self.values[reg]

    def write(self, reg: int, value: int) -> None:
        self._check(reg)
        self.values[reg] = value & MASK32

    def read_many(self, regs) -> list[int]:
        return [self.read(r) for r in regs]

    @property
    def sp(self) -> int:
        return self.values[SP]

    @sp.setter
    def sp(self, value: int) -> None:
        self.values[SP] = value & MASK32

    @property
    def lr(self) -> int:
        return self.values[LR]

    @lr.setter
    def lr(self, value: int) -> None:
        self.values[LR] = value & MASK32

    @property
    def pc(self) -> int:
        return self.values[PC]

    @pc.setter
    def pc(self, value: int) -> None:
        self.values[PC] = value & MASK32

    def snapshot(self) -> tuple[int, ...]:
        """Immutable copy of the register state (for test assertions)."""
        return tuple(self.values)

    @staticmethod
    def _check(reg: int) -> None:
        if not 0 <= reg <= 15:
            raise ValueError(f"register number out of range: {reg}")
