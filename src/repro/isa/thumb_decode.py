"""Decoder for the Thumb/Thumb-2 encodings produced by :mod:`repro.isa.thumb`.

Used by the disassembler and by the encode/decode round-trip property tests.
Only the subset the encoder can emit is understood; anything else raises
:class:`~repro.isa.arm32.EncodingError`.
"""

from __future__ import annotations

from repro.isa.arm32 import EncodingError
from repro.isa.conditions import Condition
from repro.isa.instructions import Instruction, Mem, Shift
from repro.isa.registers import LR, MASK32, PC, SP
from repro.isa.thumb import (
    _SHIFT_BY_TYPE,
    _T2_DP_BY_OPCODE,
    _T16_ALU_BY_OPCODE,
    _T16_EXTEND_BY_OP,
    _T16_LS_REG_BY_OP,
    _T16_REV_BY_OP,
    is_wide,
    thumb2_expand_imm,
)


def decode_thumb(halfwords: list[int], address: int = 0) -> Instruction:
    """Decode one instruction from one or two 16-bit halfwords."""
    hw1 = halfwords[0]
    if is_wide(hw1):
        if len(halfwords) < 2:
            raise EncodingError("truncated 32-bit encoding")
        return _decode_wide((hw1 << 16) | halfwords[1], address)
    return _decode_narrow(hw1, address)


# ----------------------------------------------------------------------
# 16-bit
# ----------------------------------------------------------------------

def _decode_narrow(hw: int, address: int) -> Instruction:
    top = hw >> 12
    kwargs = dict(address=address, size=2)

    if hw == 0xBF00:
        return Instruction("NOP", **kwargs)
    if hw == 0xBF30:
        return Instruction("WFI", **kwargs)
    if hw == 0xB672:
        return Instruction("CPSID", **kwargs)
    if hw == 0xB662:
        return Instruction("CPSIE", **kwargs)
    if (hw & 0xFF00) == 0xBF00:  # IT
        return _decode_it(hw, kwargs)
    if (hw & 0xFF00) == 0xBE00:
        return Instruction("BKPT", imm=hw & 0xFF, **kwargs)
    if (hw & 0xFF00) == 0xDF00:
        return Instruction("SVC", imm=hw & 0xFF, **kwargs)

    if (hw & 0xF800) in (0x0000, 0x0800, 0x1000):  # shift imm
        op = ["LSL", "LSR", "ASR"][(hw >> 11) & 3]
        amount = (hw >> 6) & 0x1F
        rn = (hw >> 3) & 7
        rd = hw & 7
        if op == "LSL" and amount == 0:
            return Instruction("MOV", setflags=True, rd=rd, rm=rn, **kwargs)
        if op in ("LSR", "ASR") and amount == 0:
            amount = 32
        return Instruction(op, setflags=True, rd=rd, rn=rn, imm=amount, **kwargs)
    if (hw & 0xF800) == 0x1800:  # add/sub 3-reg / imm3
        sub = bool(hw & 0x0200)
        imm_form = bool(hw & 0x0400)
        mnemonic = "SUB" if sub else "ADD"
        rd, rn = hw & 7, (hw >> 3) & 7
        third = (hw >> 6) & 7
        if imm_form:
            return Instruction(mnemonic, setflags=True, rd=rd, rn=rn, imm=third, **kwargs)
        return Instruction(mnemonic, setflags=True, rd=rd, rn=rn, rm=third, **kwargs)
    if top == 0x2 or top == 0x3:  # MOV/CMP/ADD/SUB imm8
        op = (hw >> 11) & 3
        reg = (hw >> 8) & 7
        imm8 = hw & 0xFF
        if op == 0:
            return Instruction("MOV", setflags=True, rd=reg, imm=imm8, **kwargs)
        if op == 1:
            return Instruction("CMP", rn=reg, imm=imm8, **kwargs)
        mnemonic = "ADD" if op == 2 else "SUB"
        return Instruction(mnemonic, setflags=True, rd=reg, rn=reg, imm=imm8, **kwargs)
    if (hw & 0xFC00) == 0x4000:  # ALU register
        return _decode_t16_alu(hw, kwargs)
    if (hw & 0xFC00) == 0x4400:  # hi-register ops / BX
        return _decode_hi_reg(hw, kwargs)
    if (hw & 0xF800) == 0x4800:  # LDR literal
        rt = (hw >> 8) & 7
        return Instruction("LDR", rd=rt, mem=Mem(rn=PC, offset=(hw & 0xFF) * 4), **kwargs)
    if (hw & 0xF000) == 0x5000:  # load/store register offset
        op = (hw >> 9) & 7
        mnemonic = _T16_LS_REG_BY_OP[op]
        return Instruction(mnemonic, rd=hw & 7,
                           mem=Mem(rn=(hw >> 3) & 7, rm=(hw >> 6) & 7), **kwargs)
    if (hw & 0xE000) == 0x6000:  # word/byte imm5
        byte = bool(hw & 0x1000)
        load = bool(hw & 0x0800)
        imm5 = (hw >> 6) & 0x1F
        offset = imm5 if byte else imm5 * 4
        mnemonic = ("LDR" if load else "STR") + ("B" if byte else "")
        return Instruction(mnemonic, rd=hw & 7, mem=Mem(rn=(hw >> 3) & 7, offset=offset), **kwargs)
    if (hw & 0xF000) == 0x8000:  # halfword imm5
        load = bool(hw & 0x0800)
        offset = ((hw >> 6) & 0x1F) * 2
        mnemonic = "LDRH" if load else "STRH"
        return Instruction(mnemonic, rd=hw & 7, mem=Mem(rn=(hw >> 3) & 7, offset=offset), **kwargs)
    if (hw & 0xF000) == 0x9000:  # SP-relative
        load = bool(hw & 0x0800)
        rt = (hw >> 8) & 7
        mnemonic = "LDR" if load else "STR"
        return Instruction(mnemonic, rd=rt, mem=Mem(rn=SP, offset=(hw & 0xFF) * 4), **kwargs)
    if (hw & 0xF800) == 0xA000:  # ADR
        return Instruction("ADR", rd=(hw >> 8) & 7, imm=(hw & 0xFF) * 4, **kwargs)
    if (hw & 0xF800) == 0xA800:  # ADD Rd, SP, imm8
        return Instruction("ADD", rd=(hw >> 8) & 7, rn=SP, imm=(hw & 0xFF) * 4, **kwargs)
    if (hw & 0xFF00) == 0xB000:  # ADD/SUB SP imm7
        mnemonic = "SUB" if hw & 0x80 else "ADD"
        return Instruction(mnemonic, rd=SP, rn=SP, imm=(hw & 0x7F) * 4, **kwargs)
    if (hw & 0xFF00) == 0xB200:  # extend
        mnemonic = _T16_EXTEND_BY_OP[(hw >> 6) & 3]
        return Instruction(mnemonic, rd=hw & 7, rm=(hw >> 3) & 7, **kwargs)
    if (hw & 0xFF00) == 0xBA00:  # REV/REV16
        mnemonic = _T16_REV_BY_OP[(hw >> 6) & 3]
        return Instruction(mnemonic, rd=hw & 7, rm=(hw >> 3) & 7, **kwargs)
    if (hw & 0xFE00) == 0xB400:  # PUSH
        regs = [r for r in range(8) if hw & (1 << r)]
        if hw & 0x100:
            regs.append(LR)
        return Instruction("PUSH", reglist=tuple(regs), **kwargs)
    if (hw & 0xFE00) == 0xBC00:  # POP
        regs = [r for r in range(8) if hw & (1 << r)]
        if hw & 0x100:
            regs.append(PC)
        return Instruction("POP", reglist=tuple(regs), **kwargs)
    if (hw & 0xF000) == 0xC000:  # LDM/STM
        load = bool(hw & 0x0800)
        rn = (hw >> 8) & 7
        regs = tuple(r for r in range(8) if hw & (1 << r))
        writeback = True
        if load and rn in regs:
            writeback = False
        return Instruction("LDM" if load else "STM", rn=rn, reglist=regs,
                           writeback=writeback, **kwargs)
    if (hw & 0xF000) == 0xD000:  # conditional branch
        cond = Condition((hw >> 8) & 0xF)
        offset = hw & 0xFF
        if offset & 0x80:
            offset -= 0x100
        target = (address + 4 + offset * 2) & MASK32
        return Instruction("B", cond=cond, target=target, **kwargs)
    if (hw & 0xF800) == 0xE000:  # unconditional branch
        offset = hw & 0x7FF
        if offset & 0x400:
            offset -= 0x800
        target = (address + 4 + offset * 2) & MASK32
        return Instruction("B", target=target, **kwargs)
    raise EncodingError(f"cannot decode Thumb halfword {hw:#06x}")


def _decode_it(hw: int, kwargs) -> Instruction:
    firstcond = Condition((hw >> 4) & 0xF)
    mask = hw & 0xF
    c0 = firstcond.value & 1
    bits = [(mask >> 3) & 1, (mask >> 2) & 1, (mask >> 1) & 1, mask & 1]
    pattern = "T"
    seen_stop = False
    for i, bit in enumerate(bits):
        remaining = bits[i + 1:]
        if bit == 1 and all(b == 0 for b in remaining):
            seen_stop = True
            break
        pattern += "T" if bit == c0 else "E"
    if not seen_stop:
        raise EncodingError(f"bad IT mask {mask:#x}")
    return Instruction("IT", cond=firstcond, it_mask=pattern, **kwargs)


def _decode_t16_alu(hw: int, kwargs) -> Instruction:
    op = (hw >> 6) & 0xF
    rm = (hw >> 3) & 7
    rdn = hw & 7
    mnemonic = _T16_ALU_BY_OPCODE[op]
    if mnemonic in ("LSL", "LSR", "ASR", "ROR"):
        return Instruction(mnemonic, setflags=True, rd=rdn, rn=rdn, rm=rm, **kwargs)
    if mnemonic == "RSB":
        return Instruction("RSB", setflags=True, rd=rdn, rn=rm, imm=0, **kwargs)
    if mnemonic in ("TST", "CMP", "CMN"):
        return Instruction(mnemonic, rn=rdn, rm=rm, **kwargs)
    if mnemonic == "MVN":
        return Instruction("MVN", setflags=True, rd=rdn, rm=rm, **kwargs)
    if mnemonic == "MUL":
        return Instruction("MUL", setflags=True, rd=rdn, rn=rm, rm=rdn, **kwargs)
    return Instruction(mnemonic, setflags=True, rd=rdn, rn=rdn, rm=rm, **kwargs)


def _decode_hi_reg(hw: int, kwargs) -> Instruction:
    op = (hw >> 8) & 3
    rm = (hw >> 3) & 0xF
    rdn = ((hw >> 7) & 1) << 3 | (hw & 7)
    if op == 0:
        return Instruction("ADD", rd=rdn, rn=rdn, rm=rm, **kwargs)
    if op == 1:
        return Instruction("CMP", rn=rdn, rm=rm, **kwargs)
    if op == 2:
        return Instruction("MOV", rd=rdn, rm=rm, **kwargs)
    if hw & 0x80:
        return Instruction("BLX", rm=rm, **kwargs)
    return Instruction("BX", rm=rm, **kwargs)


# ----------------------------------------------------------------------
# 32-bit
# ----------------------------------------------------------------------

def _decode_wide(word: int, address: int) -> Instruction:
    hw1 = word >> 16
    hw2 = word & 0xFFFF
    kwargs = dict(address=address, size=4)

    if (hw1 & 0xFFF0) == 0xE8D0 and (hw2 & 0xFFE0) == 0xF000:  # TBB/TBH
        mnemonic = "TBH" if hw2 & 0x10 else "TBB"
        return Instruction(mnemonic, rn=hw1 & 0xF, rm=hw2 & 0xF, **kwargs)
    if hw1 == 0xE92D:
        regs = tuple(r for r in range(16) if hw2 & (1 << r))
        return Instruction("PUSH", reglist=regs, **kwargs)
    if hw1 == 0xE8BD:
        regs = tuple(r for r in range(16) if hw2 & (1 << r))
        return Instruction("POP", reglist=regs, **kwargs)
    if (hw1 & 0xFFD0) in (0xE890, 0xE880):  # LDM.W/STM.W
        load = bool(hw1 & 0x0010)
        writeback = bool(hw1 & 0x0020)
        regs = tuple(r for r in range(16) if hw2 & (1 << r))
        return Instruction("LDM" if load else "STM", rn=hw1 & 0xF, reglist=regs,
                           writeback=writeback, **kwargs)
    if (hw1 & 0xFE00) == 0xEA00:  # DP shifted register
        return _decode_dp_reg(hw1, hw2, kwargs)
    if (hw1 & 0xF800) == 0xF000 and (hw2 & 0x8000) == 0x8000:  # branches & misc
        return _decode_branch_or_dp(hw1, hw2, address, kwargs)
    if (hw1 & 0xF800) == 0xF000 and not hw2 & 0x8000:
        return _decode_dp_imm(hw1, hw2, kwargs)
    if (hw1 & 0xFE00) == 0xF800 or (hw1 & 0xFE00) == 0xF900:
        return _decode_mem(hw1, hw2, kwargs)
    if (hw1 & 0xFF80) == 0xFB00:  # MUL/MLA/MLS
        ra = (hw2 >> 12) & 0xF
        rd = (hw2 >> 8) & 0xF
        if (hw2 & 0xF0) == 0x10:
            return Instruction("MLS", rd=rd, rn=hw1 & 0xF, rm=hw2 & 0xF, ra=ra, **kwargs)
        if ra == 0xF:
            return Instruction("MUL", rd=rd, rn=hw1 & 0xF, rm=hw2 & 0xF, **kwargs)
        return Instruction("MLA", rd=rd, rn=hw1 & 0xF, rm=hw2 & 0xF, ra=ra, **kwargs)
    if (hw1 & 0xFFF0) == 0xFBA0:
        return Instruction("UMULL", rd=(hw2 >> 12) & 0xF, ra=(hw2 >> 8) & 0xF,
                           rn=hw1 & 0xF, rm=hw2 & 0xF, **kwargs)
    if (hw1 & 0xFFF0) == 0xFB80:
        return Instruction("SMULL", rd=(hw2 >> 12) & 0xF, ra=(hw2 >> 8) & 0xF,
                           rn=hw1 & 0xF, rm=hw2 & 0xF, **kwargs)
    if (hw1 & 0xFFF0) == 0xFB90:
        return Instruction("SDIV", rd=(hw2 >> 8) & 0xF, rn=hw1 & 0xF, rm=hw2 & 0xF, **kwargs)
    if (hw1 & 0xFFF0) == 0xFBB0:
        return Instruction("UDIV", rd=(hw2 >> 8) & 0xF, rn=hw1 & 0xF, rm=hw2 & 0xF, **kwargs)
    if (hw1 & 0xFFF0) == 0xFAB0:
        return Instruction("CLZ", rd=(hw2 >> 8) & 0xF, rm=hw2 & 0xF, **kwargs)
    if (hw1 & 0xFFF0) == 0xFA90:
        op = (hw2 >> 4) & 0xF
        mnemonic = {0x8: "REV", 0x9: "REV16", 0xA: "RBIT"}.get(op)
        if mnemonic is None:
            raise EncodingError(f"unknown FA9x op {op:#x}")
        return Instruction(mnemonic, rd=(hw2 >> 8) & 0xF, rm=hw2 & 0xF, **kwargs)
    if (hw1 & 0xFF80) == 0xFA00 and (hw2 & 0xF0F0) == 0xF000:  # shift reg wide
        stype = _SHIFT_BY_TYPE[(hw1 >> 5) & 3]
        return Instruction(stype, setflags=bool(hw1 & 0x10), rd=(hw2 >> 8) & 0xF,
                           rn=hw1 & 0xF, rm=hw2 & 0xF, **kwargs)
    raise EncodingError(f"cannot decode Thumb-2 word {word:#010x}")


def _decode_dp_reg(hw1: int, hw2: int, kwargs) -> Instruction:
    op = (hw1 >> 5) & 0xF
    setflags = bool(hw1 & 0x10)
    rn = hw1 & 0xF
    rd = (hw2 >> 8) & 0xF
    rm = hw2 & 0xF
    amount = ((hw2 >> 12) & 7) << 2 | ((hw2 >> 6) & 3)
    stype = _SHIFT_BY_TYPE[(hw2 >> 4) & 3]
    if amount == 0 and stype in ("LSR", "ASR"):
        amount = 32
    shift = Shift(stype, amount) if (amount or stype != "LSL") and amount else None
    if op == 0b0010 and rn == 0xF:  # MOV / shift-immediate
        if shift is not None:
            return Instruction(shift.kind, setflags=setflags, rd=rd, rn=rm,
                               imm=shift.amount, **kwargs)
        return Instruction("MOV", setflags=setflags, rd=rd, rm=rm, **kwargs)
    if op == 0b0011 and rn == 0xF:
        return Instruction("MVN", setflags=setflags, rd=rd, rm=rm, shift=shift, **kwargs)
    mnemonic = _T2_DP_BY_OPCODE.get(op)
    if mnemonic is None:
        raise EncodingError(f"T2 DP opcode {op:#x}")
    if rd == 0xF and setflags:
        compare = {"SUB": "CMP", "ADD": "CMN", "AND": "TST", "EOR": "TEQ"}.get(mnemonic)
        if compare:
            return Instruction(compare, rn=rn, rm=rm, shift=shift, **kwargs)
    return Instruction(mnemonic, setflags=setflags, rd=rd, rn=rn, rm=rm, shift=shift, **kwargs)


def _decode_dp_imm(hw1: int, hw2: int, kwargs) -> Instruction:
    if (hw1 & 0xFBFF) in (0xF20F, 0xF2AF):  # ADR.W (ADD/SUB rd, pc, imm12)
        offset = ((((hw1 >> 10) & 1) << 11) | (((hw2 >> 12) & 7) << 8) | (hw2 & 0xFF))
        if (hw1 & 0xFBFF) == 0xF2AF:
            offset = -offset
        return Instruction("ADR", rd=(hw2 >> 8) & 0xF, imm=offset, **kwargs)
    if (hw1 & 0xFBF0) in (0xF240, 0xF2C0):  # MOVW/MOVT
        imm4 = hw1 & 0xF
        i = (hw1 >> 10) & 1
        imm3 = (hw2 >> 12) & 7
        imm8 = hw2 & 0xFF
        imm16 = (imm4 << 12) | (i << 11) | (imm3 << 8) | imm8
        mnemonic = "MOVW" if (hw1 & 0xFBF0) == 0xF240 else "MOVT"
        return Instruction(mnemonic, rd=(hw2 >> 8) & 0xF, imm=imm16, **kwargs)
    if (hw1 & 0xFFF0) in (0xF360, 0xF340, 0xF3C0):  # bitfield
        rn = hw1 & 0xF
        lsb = ((hw2 >> 12) & 7) << 2 | ((hw2 >> 6) & 3)
        rd = (hw2 >> 8) & 0xF
        low5 = hw2 & 0x1F
        if (hw1 & 0xFFF0) == 0xF360:
            width = low5 - lsb + 1
            if rn == 0xF:
                return Instruction("BFC", rd=rd, bf_lsb=lsb, bf_width=width, **kwargs)
            return Instruction("BFI", rd=rd, rn=rn, bf_lsb=lsb, bf_width=width, **kwargs)
        mnemonic = "UBFX" if (hw1 & 0xFFF0) == 0xF3C0 else "SBFX"
        return Instruction(mnemonic, rd=rd, rn=rn, bf_lsb=lsb, bf_width=low5 + 1, **kwargs)
    op = (hw1 >> 5) & 0xF
    setflags = bool(hw1 & 0x10)
    rn = hw1 & 0xF
    rd = (hw2 >> 8) & 0xF
    imm12 = (((hw1 >> 10) & 1) << 11) | (((hw2 >> 12) & 7) << 8) | (hw2 & 0xFF)
    imm = thumb2_expand_imm(imm12)
    if op == 0b0010 and rn == 0xF:
        return Instruction("MOV", setflags=setflags, rd=rd, imm=imm, **kwargs)
    if op == 0b0011 and rn == 0xF:
        return Instruction("MVN", setflags=setflags, rd=rd, imm=imm, **kwargs)
    mnemonic = _T2_DP_BY_OPCODE.get(op)
    if mnemonic is None:
        raise EncodingError(f"T2 DP imm opcode {op:#x}")
    if rd == 0xF and setflags:
        compare = {"SUB": "CMP", "ADD": "CMN", "AND": "TST", "EOR": "TEQ"}.get(mnemonic)
        if compare:
            return Instruction(compare, rn=rn, imm=imm, **kwargs)
    return Instruction(mnemonic, setflags=setflags, rd=rd, rn=rn, imm=imm, **kwargs)


def _decode_branch_or_dp(hw1: int, hw2: int, address: int, kwargs) -> Instruction:
    if (hw2 & 0xD000) == 0x8000:  # conditional B.W
        s = (hw1 >> 10) & 1
        cond = Condition((hw1 >> 6) & 0xF)
        imm6 = hw1 & 0x3F
        j1 = (hw2 >> 13) & 1
        j2 = (hw2 >> 11) & 1
        imm11 = hw2 & 0x7FF
        offset = (s << 20) | (j2 << 19) | (j1 << 18) | (imm6 << 12) | (imm11 << 1)
        if offset & (1 << 20):
            offset -= 1 << 21
        return Instruction("B", cond=cond, target=(address + 4 + offset) & MASK32, **kwargs)
    # unconditional B.W / BL
    s = (hw1 >> 10) & 1
    imm10 = hw1 & 0x3FF
    j1 = (hw2 >> 13) & 1
    j2 = (hw2 >> 11) & 1
    imm11 = hw2 & 0x7FF
    i1 = (~(j1 ^ s)) & 1
    i2 = (~(j2 ^ s)) & 1
    offset = (s << 24) | (i1 << 23) | (i2 << 22) | (imm10 << 12) | (imm11 << 1)
    if offset & (1 << 24):
        offset -= 1 << 25
    mnemonic = "BL" if (hw2 & 0xD000) == 0xD000 else "B"
    return Instruction(mnemonic, target=(address + 4 + offset) & MASK32, **kwargs)


def _decode_mem(hw1: int, hw2: int, kwargs) -> Instruction:
    signed = bool(hw1 & 0x0100)
    load = bool(hw1 & 0x0010)
    size = (hw1 >> 5) & 3
    u_imm12 = bool(hw1 & 0x0080)
    rn = hw1 & 0xF
    rt = (hw2 >> 12) & 0xF
    if signed:
        mnemonic = {0: "LDRSB", 1: "LDRSH"}[size]
    else:
        base = {0: "B", 1: "H", 2: ""}[size]
        mnemonic = ("LDR" if load else "STR") + base
    if rn == 0xF:  # literal
        offset = hw2 & 0xFFF
        if not u_imm12:
            offset = -offset
        return Instruction(mnemonic, rd=rt, mem=Mem(rn=PC, offset=offset), **kwargs)
    if u_imm12:
        return Instruction(mnemonic, rd=rt, mem=Mem(rn=rn, offset=hw2 & 0xFFF), **kwargs)
    if hw2 & 0x800:  # imm8 with PUW
        p = bool(hw2 & 0x400)
        u = bool(hw2 & 0x200)
        w = bool(hw2 & 0x100)
        offset = hw2 & 0xFF
        if not u:
            offset = -offset
        mem = Mem(rn=rn, offset=offset, writeback=w and p, postindex=not p)
        return Instruction(mnemonic, rd=rt, mem=mem, **kwargs)
    # register offset
    mem = Mem(rn=rn, rm=hw2 & 0xF, shift=(hw2 >> 4) & 3)
    return Instruction(mnemonic, rd=rt, mem=mem, **kwargs)
