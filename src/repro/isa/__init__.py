"""Instruction-set architecture substrate: ARM, Thumb, and Thumb-2.

This subpackage models the three instruction sets the paper compares
(section 2): the classic 32-bit ARM set, the compressed 16-bit Thumb set,
and the blended 16/32-bit Thumb-2 set with its new automotive-oriented
instructions (MOVW/MOVT, IT, TBB, bitfield ops, hardware divide).

It provides executable instruction objects, bit-exact encoders/decoders for
the modelled subset, an assembler, and a disassembler.  Timing is *not*
modelled here - that belongs to the core models in :mod:`repro.core`.
"""

from repro.isa.arm32 import EncodingError, decode_arm, encode_arm, encode_arm_immediate
from repro.isa.assembler import (
    AssemblyError,
    Directive,
    Label,
    LiteralRef,
    Program,
    assemble,
    assemble_items,
)
from repro.isa.conditions import Condition, condition_passed
from repro.isa.disasm import disassemble_image, disassemble_word, format_listing
from repro.isa.instructions import (
    ISA_ARM,
    ISA_THUMB,
    ISA_THUMB2,
    ALL_ISAS,
    Instruction,
    Mem,
    Shift,
    instr,
)
from repro.isa.registers import (
    LR,
    MASK32,
    PC,
    SP,
    Apsr,
    RegisterFile,
    parse_register,
    register_name,
)
from repro.isa.predecode import MicroOp, compile_exec, predecode
from repro.isa.semantics import (
    Outcome,
    UndefinedInstruction,
    add_with_carry,
    execute,
    shift_c,
    to_signed,
)
from repro.isa.thumb import encode_thumb, encode_thumb2, encode_thumb2_imm, thumb2_expand_imm
from repro.isa.thumb_decode import decode_thumb

__all__ = [
    "EncodingError", "decode_arm", "encode_arm", "encode_arm_immediate",
    "AssemblyError", "Directive", "Label", "LiteralRef", "Program",
    "assemble", "assemble_items",
    "Condition", "condition_passed",
    "disassemble_image", "disassemble_word", "format_listing",
    "ISA_ARM", "ISA_THUMB", "ISA_THUMB2", "ALL_ISAS",
    "Instruction", "Mem", "Shift", "instr",
    "LR", "MASK32", "PC", "SP", "Apsr", "RegisterFile",
    "parse_register", "register_name",
    "MicroOp", "compile_exec", "predecode",
    "Outcome", "UndefinedInstruction", "add_with_carry", "execute",
    "shift_c", "to_signed",
    "encode_thumb", "encode_thumb2", "encode_thumb2_imm", "thumb2_expand_imm",
    "decode_thumb",
]
