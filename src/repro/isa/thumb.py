"""Bit-level encoder/decoder for Thumb (16-bit) and Thumb-2 (mixed 16/32-bit).

Two instruction sets share this module:

* **Thumb** (``ISA_THUMB``): the original 16-bit-only compressed set, as on
  ARM7TDMI.  Narrow encodings only; anything that does not fit raises
  :class:`EncodingError` and the code generator must emit a sequence instead.
* **Thumb-2** (``ISA_THUMB2``): the blended set, as on Cortex-M3 and
  ARM1156T2-S.  :func:`encode_thumb2` picks the narrow encoding when one
  exists (matching what a real assembler does for code density) and falls
  back to the 32-bit encoding otherwise.

Encodings follow the ARMv7-M ARM; ``BL`` uses the 25-bit T1 encoding for
both instruction sets so the decoder does not need to know the ISA.
"""

from __future__ import annotations

from repro.isa.conditions import Condition
from repro.isa.instructions import Instruction, Shift
from repro.isa.registers import LR, MASK32, PC, SP

from repro.isa.arm32 import EncodingError

_SHIFT_TYPES = {"LSL": 0, "LSR": 1, "ASR": 2, "ROR": 3}
_SHIFT_BY_TYPE = {v: k for k, v in _SHIFT_TYPES.items()}

# Thumb-2 data-processing opcodes (modified-immediate and shifted-register).
_T2_DP_OPCODES = {
    "AND": 0b0000, "BIC": 0b0001, "ORR": 0b0010, "ORN": 0b0011,
    "EOR": 0b0100, "ADD": 0b1000, "ADC": 0b1010, "SBC": 0b1011,
    "SUB": 0b1101, "RSB": 0b1110,
}
_T2_DP_BY_OPCODE = {v: k for k, v in _T2_DP_OPCODES.items()}

_T16_ALU_OPCODES = {
    "AND": 0b0000, "EOR": 0b0001, "LSL": 0b0010, "LSR": 0b0011,
    "ASR": 0b0100, "ADC": 0b0101, "SBC": 0b0110, "ROR": 0b0111,
    "TST": 0b1000, "RSB": 0b1001, "CMP": 0b1010, "CMN": 0b1011,
    "ORR": 0b1100, "MUL": 0b1101, "BIC": 0b1110, "MVN": 0b1111,
}
_T16_ALU_BY_OPCODE = {v: k for k, v in _T16_ALU_OPCODES.items()}


def _low(*regs: int | None) -> bool:
    return all(r is not None and r < 8 for r in regs)


def is_wide(halfword: int) -> bool:
    """True when ``halfword`` is the first half of a 32-bit encoding."""
    return (halfword >> 11) in (0b11101, 0b11110, 0b11111)


# ----------------------------------------------------------------------
# Thumb-2 modified immediates
# ----------------------------------------------------------------------

def thumb2_expand_imm(imm12: int) -> int:
    """ThumbExpandImm() from the ARMv7-M ARM."""
    if (imm12 >> 10) == 0:
        imm8 = imm12 & 0xFF
        mode = (imm12 >> 8) & 3
        if mode == 0:
            return imm8
        if mode == 1:
            return (imm8 << 16) | imm8
        if mode == 2:
            return ((imm8 << 24) | (imm8 << 8)) & MASK32
        return imm8 * 0x01010101
    rotation = (imm12 >> 7) & 0x1F
    value = 0x80 | (imm12 & 0x7F)
    return ((value >> rotation) | (value << (32 - rotation))) & MASK32


def encode_thumb2_imm(value: int) -> int | None:
    """Find the 12-bit modified-immediate encoding of ``value``, or None."""
    value &= MASK32
    if value <= 0xFF:
        return value
    byte = value & 0xFF
    if value == (byte << 16) | byte:
        return (1 << 8) | byte
    byte = (value >> 8) & 0xFF
    if value == ((byte << 24) | (byte << 8)) & MASK32 and byte:
        return (2 << 8) | byte
    byte = value & 0xFF
    if value == byte * 0x01010101:
        return (3 << 8) | byte
    for rotation in range(8, 32):
        candidate = ((value << rotation) | (value >> (32 - rotation))) & MASK32
        if 0x80 <= candidate <= 0xFF:
            return (rotation << 7) | (candidate & 0x7F)
    return None


# ----------------------------------------------------------------------
# 16-bit narrow encodings
# ----------------------------------------------------------------------

def _narrow_shift_imm(ins: Instruction) -> int | None:
    if ins.mnemonic not in ("LSL", "LSR", "ASR") or ins.rm is not None:
        return None
    if not _low(ins.rd, ins.rn) or not ins.setflags:
        return None
    amount = ins.imm or 0
    if ins.mnemonic == "LSL" and not 0 <= amount <= 31:
        return None
    if ins.mnemonic in ("LSR", "ASR"):
        if not 1 <= amount <= 32:
            return None
        amount &= 0x1F
    op = {"LSL": 0, "LSR": 1, "ASR": 2}[ins.mnemonic]
    return (op << 11) | (amount << 6) | (ins.rn << 3) | ins.rd


def _narrow_add_sub(ins: Instruction) -> int | None:
    if ins.mnemonic not in ("ADD", "SUB"):
        return None
    op = 0 if ins.mnemonic == "ADD" else 1
    # SP-relative forms (no flags).
    if ins.rd == SP and ins.rn == SP and ins.imm is not None and not ins.setflags:
        if ins.imm % 4 == 0 and 0 <= ins.imm <= 508:
            return 0xB000 | (op << 7) | (ins.imm // 4)
        return None
    if ins.mnemonic == "ADD" and ins.rn == SP and _low(ins.rd) and ins.imm is not None:
        if not ins.setflags and ins.imm % 4 == 0 and 0 <= ins.imm <= 1020:
            return 0xA800 | (ins.rd << 8) | (ins.imm // 4)
        return None
    # ADD Rd, Rm (hi regs allowed, no flags).
    if (ins.mnemonic == "ADD" and ins.rm is not None and not ins.setflags
            and ins.shift is None and ins.rd == ins.rn):
        rd = ins.rd
        return 0x4400 | ((rd >> 3) << 7) | (ins.rm << 3) | (rd & 7)
    if not ins.setflags:
        return None
    if ins.rm is not None and ins.shift is None and _low(ins.rd, ins.rn, ins.rm):
        return 0x1800 | (op << 9) | (ins.rm << 6) | (ins.rn << 3) | ins.rd
    if ins.imm is not None and _low(ins.rd, ins.rn):
        if ins.rd == ins.rn and 0 <= ins.imm <= 255:
            return 0x3000 | (op << 11) | (ins.rd << 8) | ins.imm
        if 0 <= ins.imm <= 7:
            return 0x1C00 | (op << 9) | (ins.imm << 6) | (ins.rn << 3) | ins.rd
    return None


def _narrow_mov(ins: Instruction) -> int | None:
    if ins.mnemonic != "MOV" or ins.shift is not None:
        return None
    if ins.imm is not None:
        if ins.setflags and _low(ins.rd) and 0 <= ins.imm <= 255:
            return 0x2000 | (ins.rd << 8) | ins.imm
        return None
    if ins.rm is None:
        return None
    if not ins.setflags:  # hi-register MOV
        return 0x4600 | ((ins.rd >> 3) << 7) | (ins.rm << 3) | (ins.rd & 7)
    if _low(ins.rd, ins.rm):  # MOVS Rd, Rm == LSLS Rd, Rm, #0
        return (ins.rm << 3) | ins.rd
    return None


def _narrow_alu(ins: Instruction) -> int | None:
    op = _T16_ALU_OPCODES.get(ins.mnemonic)
    if op is None or not ins.setflags:
        return None
    if ins.mnemonic in ("LSL", "LSR", "ASR", "ROR"):
        # register-controlled shift: Rdn <<= Rm
        if ins.rm is None or ins.rd != ins.rn or not _low(ins.rd, ins.rm):
            return None
        return 0x4000 | (op << 6) | (ins.rm << 3) | ins.rd
    if ins.mnemonic == "RSB":
        if ins.imm != 0 or not _low(ins.rd, ins.rn):
            return None
        return 0x4000 | (op << 6) | (ins.rn << 3) | ins.rd
    if ins.mnemonic == "MVN":
        if ins.rm is None or not _low(ins.rd, ins.rm) or ins.shift is not None:
            return None
        return 0x4000 | (op << 6) | (ins.rm << 3) | ins.rd
    if ins.mnemonic == "MUL":
        if not _low(ins.rd, ins.rn, ins.rm):
            return None
        if ins.rd == ins.rm:
            return 0x4000 | (op << 6) | (ins.rn << 3) | ins.rd
        if ins.rd == ins.rn:
            return 0x4000 | (op << 6) | (ins.rm << 3) | ins.rd
        return None
    if ins.rm is None or ins.shift is not None:
        return None
    if ins.rd != ins.rn or not _low(ins.rd, ins.rm):
        return None
    return 0x4000 | (op << 6) | (ins.rm << 3) | ins.rd


def _narrow_compare(ins: Instruction) -> int | None:
    if ins.mnemonic == "CMP":
        if ins.imm is not None and _low(ins.rn) and 0 <= ins.imm <= 255:
            return 0x2800 | (ins.rn << 8) | ins.imm
        if ins.rm is not None and ins.shift is None:
            if _low(ins.rn, ins.rm):
                return 0x4280 | (ins.rm << 3) | ins.rn
            return 0x4500 | ((ins.rn >> 3) << 7) | (ins.rm << 3) | (ins.rn & 7)
        return None
    if ins.mnemonic in ("TST", "CMN"):
        if ins.rm is not None and ins.shift is None and _low(ins.rn, ins.rm):
            op = _T16_ALU_OPCODES[ins.mnemonic]
            return 0x4000 | (op << 6) | (ins.rm << 3) | ins.rn
    return None


_T16_LS_REG = {"STR": 0, "STRH": 1, "STRB": 2, "LDRSB": 3,
               "LDR": 4, "LDRH": 5, "LDRB": 6, "LDRSH": 7}
_T16_LS_REG_BY_OP = {v: k for k, v in _T16_LS_REG.items()}


def _narrow_load_store(ins: Instruction) -> int | None:
    mem = ins.mem
    if mem is None or mem.writeback or mem.postindex:
        return None
    rt = ins.rd
    if mem.rn == PC:  # LDR literal
        if ins.mnemonic != "LDR" or not _low(rt):
            return None
        if mem.offset % 4 == 0 and 0 <= mem.offset <= 1020:
            return 0x4800 | (rt << 8) | (mem.offset // 4)
        return None
    if mem.rn == SP:
        if ins.mnemonic not in ("LDR", "STR") or not _low(rt):
            return None
        if mem.offset % 4 == 0 and 0 <= mem.offset <= 1020:
            l_bit = 1 if ins.mnemonic == "LDR" else 0
            return 0x9000 | (l_bit << 11) | (rt << 8) | (mem.offset // 4)
        return None
    if mem.rm is not None:
        if mem.shift != 0 or not _low(rt, mem.rn, mem.rm):
            return None
        op = _T16_LS_REG[ins.mnemonic]
        return 0x5000 | (op << 9) | (mem.rm << 6) | (mem.rn << 3) | rt
    if not _low(rt, mem.rn) or mem.offset < 0:
        return None
    offset = mem.offset
    if ins.mnemonic in ("LDR", "STR"):
        if offset % 4 == 0 and offset <= 124:
            l_bit = 1 if ins.mnemonic == "LDR" else 0
            return 0x6000 | (l_bit << 11) | ((offset // 4) << 6) | (mem.rn << 3) | rt
    elif ins.mnemonic in ("LDRB", "STRB"):
        if offset <= 31:
            l_bit = 1 if ins.mnemonic == "LDRB" else 0
            return 0x7000 | (l_bit << 11) | (offset << 6) | (mem.rn << 3) | rt
    elif ins.mnemonic in ("LDRH", "STRH"):
        if offset % 2 == 0 and offset <= 62:
            l_bit = 1 if ins.mnemonic == "LDRH" else 0
            return 0x8000 | (l_bit << 11) | ((offset // 2) << 6) | (mem.rn << 3) | rt
    return None


def _narrow_block(ins: Instruction) -> int | None:
    if ins.mnemonic == "PUSH":
        bits = 0
        for reg in ins.reglist:
            if reg < 8:
                bits |= 1 << reg
            elif reg == LR:
                bits |= 1 << 8
            else:
                return None
        return 0xB400 | bits
    if ins.mnemonic == "POP":
        bits = 0
        for reg in ins.reglist:
            if reg < 8:
                bits |= 1 << reg
            elif reg == PC:
                bits |= 1 << 8
            else:
                return None
        return 0xBC00 | bits
    if ins.mnemonic in ("LDM", "STM"):
        if not _low(ins.rn) or not all(r < 8 for r in ins.reglist):
            return None
        if ins.mnemonic == "STM" and not ins.writeback:
            return None
        if ins.mnemonic == "LDM" and ins.writeback and ins.rn in ins.reglist:
            return None
        bits = 0
        for reg in ins.reglist:
            bits |= 1 << reg
        l_bit = 1 if ins.mnemonic == "LDM" else 0
        return 0xC000 | (l_bit << 11) | (ins.rn << 8) | bits
    return None


_T16_EXTEND = {"SXTH": 0, "SXTB": 1, "UXTH": 2, "UXTB": 3}
_T16_EXTEND_BY_OP = {v: k for k, v in _T16_EXTEND.items()}
_T16_REV = {"REV": 0, "REV16": 1}
_T16_REV_BY_OP = {v: k for k, v in _T16_REV.items()}


def _narrow_misc(ins: Instruction) -> int | None:
    m = ins.mnemonic
    src = ins.rm if ins.rm is not None else ins.rn
    if m in _T16_EXTEND and _low(ins.rd, src):
        return 0xB200 | (_T16_EXTEND[m] << 6) | (src << 3) | ins.rd
    if m in _T16_REV and _low(ins.rd, src):
        return 0xBA00 | (_T16_REV[m] << 6) | (src << 3) | ins.rd
    if m == "NOP":
        return 0xBF00
    if m == "WFI":
        return 0xBF30
    if m == "BKPT":
        return 0xBE00 | ((ins.imm or 0) & 0xFF)
    if m == "SVC":
        return 0xDF00 | ((ins.imm or 0) & 0xFF)
    if m == "CPSID":
        return 0xB672
    if m == "CPSIE":
        return 0xB662
    if m == "BX":
        return 0x4700 | (ins.rm << 3)
    if m == "BLX" and ins.rm is not None:
        return 0x4780 | (ins.rm << 3)
    if m == "ADR":
        if _low(ins.rd) and ins.imm is not None and ins.imm % 4 == 0 and 0 <= ins.imm <= 1020:
            return 0xA000 | (ins.rd << 8) | (ins.imm // 4)
        return None
    if m == "IT":
        firstcond = ins.cond.value
        mask_bits = _it_mask_bits(ins.cond, ins.it_mask)
        return 0xBF00 | (firstcond << 4) | mask_bits
    return None


def _it_mask_bits(firstcond: Condition, pattern: str) -> int:
    """Encode an IT pattern ('T', 'TE', 'TTT', ...) into the 4-bit mask."""
    if not 1 <= len(pattern) <= 4 or pattern[0] != "T":
        raise EncodingError(f"bad IT pattern {pattern!r}")
    c0 = firstcond.value & 1
    bits = []
    for ch in pattern[1:]:
        if ch == "T":
            bits.append(c0)
        elif ch == "E":
            bits.append(c0 ^ 1)
        else:
            raise EncodingError(f"bad IT pattern {pattern!r}")
    bits.append(1)
    while len(bits) < 4:
        bits.append(0)
    return (bits[0] << 3) | (bits[1] << 2) | (bits[2] << 1) | bits[3] if len(bits) == 4 else 0


def _narrow_branch(ins: Instruction) -> int | None:
    if ins.mnemonic != "B" or ins.target is None or ins.address is None:
        return None
    offset = ins.target - ins.address - 4
    if offset % 2:
        raise EncodingError("unaligned branch target")
    if ins.cond == Condition.AL:
        if -2048 <= offset <= 2046:
            return 0xE000 | ((offset >> 1) & 0x7FF)
        return None
    if -256 <= offset <= 254:
        return 0xD000 | (ins.cond.value << 8) | ((offset >> 1) & 0xFF)
    return None


_NARROW_ENCODERS = (
    _narrow_shift_imm, _narrow_add_sub, _narrow_mov, _narrow_alu,
    _narrow_compare, _narrow_load_store, _narrow_block, _narrow_misc,
    _narrow_branch,
)


def encode_narrow(ins: Instruction) -> int | None:
    """Try to produce a 16-bit encoding; None when none exists."""
    for encoder in _NARROW_ENCODERS:
        halfword = encoder(ins)
        if halfword is not None:
            return halfword
    return None


# ----------------------------------------------------------------------
# 32-bit wide (Thumb-2) encodings
# ----------------------------------------------------------------------

def _wide_dp(ins: Instruction) -> int | None:
    m = ins.mnemonic
    s_bit = 1 if ins.setflags else 0
    if m in ("MOV", "MVN") and ins.imm is not None:
        op = 0b0010 if m == "MOV" else 0b0011
        imm12 = encode_thumb2_imm(ins.imm)
        if imm12 is None:
            return None
        return _pack_dp_imm(op, s_bit, 0xF, ins.rd, imm12)
    if m in ("MOV", "MVN") and ins.rm is not None:
        op = 0b0010 if m == "MOV" else 0b0011
        return _pack_dp_reg(op, s_bit, 0xF, ins.rd, ins.rm, ins.shift)
    if m in ("LSL", "LSR", "ASR", "ROR"):
        if ins.rm is not None:  # register-controlled: LSL.W Rd, Rn, Rm
            stype = _SHIFT_TYPES[m]
            hw1 = 0xFA00 | (stype << 5) | (s_bit << 4) | ins.rn
            hw2 = 0xF000 | (ins.rd << 8) | ins.rm
            return (hw1 << 16) | hw2
        shift = Shift(m, ins.imm or 0)
        return _pack_dp_reg(0b0010, s_bit, 0xF, ins.rd, ins.rn, shift)
    if m in ("CMP", "CMN", "TST", "TEQ"):
        op = {"CMP": 0b1101, "CMN": 0b1000, "TST": 0b0000, "TEQ": 0b0100}[m]
        if ins.imm is not None:
            imm12 = encode_thumb2_imm(ins.imm)
            if imm12 is None:
                return None
            return _pack_dp_imm(op, 1, ins.rn, 0xF, imm12)
        return _pack_dp_reg(op, 1, ins.rn, 0xF, ins.rm, ins.shift)
    op = _T2_DP_OPCODES.get(m)
    if op is None:
        return None
    if ins.imm is not None and ins.rm is None:
        imm12 = encode_thumb2_imm(ins.imm)
        if imm12 is None:
            return None
        return _pack_dp_imm(op, s_bit, ins.rn, ins.rd, imm12)
    return _pack_dp_reg(op, s_bit, ins.rn, ins.rd, ins.rm, ins.shift)


def _pack_dp_imm(op: int, s_bit: int, rn: int, rd: int, imm12: int) -> int:
    i = (imm12 >> 11) & 1
    imm3 = (imm12 >> 8) & 7
    imm8 = imm12 & 0xFF
    hw1 = 0xF000 | (i << 10) | (op << 5) | (s_bit << 4) | rn
    hw2 = (imm3 << 12) | (rd << 8) | imm8
    return (hw1 << 16) | hw2


def _pack_dp_reg(op: int, s_bit: int, rn: int, rd: int, rm: int, shift: Shift | None) -> int:
    amount = 0
    stype = 0
    if shift is not None:
        amount = shift.amount
        stype = _SHIFT_TYPES[shift.kind]
        if amount == 32 and shift.kind in ("LSR", "ASR"):
            amount = 0
        if not 0 <= amount <= 31:
            raise EncodingError(f"shift amount {shift.amount}")
    imm3 = (amount >> 2) & 7
    imm2 = amount & 3
    hw1 = 0xEA00 | (op << 5) | (s_bit << 4) | rn
    hw2 = (imm3 << 12) | (rd << 8) | (imm2 << 6) | (stype << 4) | rm
    return (hw1 << 16) | hw2


def _wide_adr(ins: Instruction) -> int | None:
    if ins.mnemonic != "ADR" or ins.imm is None:
        return None
    offset = ins.imm
    base = 0xF20F if offset >= 0 else 0xF2AF  # ADD vs SUB from PC
    offset = abs(offset)
    if offset > 0xFFF:
        raise EncodingError(f"ADR offset {ins.imm} out of range")
    i = (offset >> 11) & 1
    imm3 = (offset >> 8) & 7
    imm8 = offset & 0xFF
    hw1 = base | (i << 10)
    hw2 = (imm3 << 12) | (ins.rd << 8) | imm8
    return (hw1 << 16) | hw2


def _wide_mov16(ins: Instruction) -> int | None:
    if ins.mnemonic not in ("MOVW", "MOVT"):
        return None
    imm = ins.imm & 0xFFFF
    imm4 = imm >> 12
    i = (imm >> 11) & 1
    imm3 = (imm >> 8) & 7
    imm8 = imm & 0xFF
    base = 0xF240 if ins.mnemonic == "MOVW" else 0xF2C0
    hw1 = base | (i << 10) | imm4
    hw2 = (imm3 << 12) | (ins.rd << 8) | imm8
    return (hw1 << 16) | hw2


def _wide_bitfield(ins: Instruction) -> int | None:
    m = ins.mnemonic
    if m not in ("BFI", "BFC", "UBFX", "SBFX"):
        return None
    lsb, width = ins.bf_lsb, ins.bf_width
    imm3 = (lsb >> 2) & 7
    imm2 = lsb & 3
    if m in ("BFI", "BFC"):
        msb = lsb + width - 1
        rn = ins.rn if m == "BFI" else 0xF
        hw1 = 0xF360 | rn
        hw2 = (imm3 << 12) | (ins.rd << 8) | (imm2 << 6) | msb
    else:
        hw1 = (0xF3C0 if m == "UBFX" else 0xF340) | ins.rn
        hw2 = (imm3 << 12) | (ins.rd << 8) | (imm2 << 6) | (width - 1)
    return (hw1 << 16) | hw2


def _wide_mul_div(ins: Instruction) -> int | None:
    m = ins.mnemonic
    if m == "MUL":
        return (0xFB00 | ins.rn) << 16 | 0xF000 | (ins.rd << 8) | ins.rm
    if m == "MLA":
        return (0xFB00 | ins.rn) << 16 | (ins.ra << 12) | (ins.rd << 8) | ins.rm
    if m == "MLS":
        return (0xFB00 | ins.rn) << 16 | (ins.ra << 12) | (ins.rd << 8) | 0x10 | ins.rm
    if m == "UMULL":
        return (0xFBA0 | ins.rn) << 16 | (ins.rd << 12) | (ins.ra << 8) | ins.rm
    if m == "SMULL":
        return (0xFB80 | ins.rn) << 16 | (ins.rd << 12) | (ins.ra << 8) | ins.rm
    if m == "SDIV":
        return (0xFB90 | ins.rn) << 16 | 0xF0F0 | (ins.rd << 8) | ins.rm
    if m == "UDIV":
        return (0xFBB0 | ins.rn) << 16 | 0xF0F0 | (ins.rd << 8) | ins.rm
    return None


def _wide_unary(ins: Instruction) -> int | None:
    m = ins.mnemonic
    rm = ins.rm if ins.rm is not None else ins.rn
    if m == "CLZ":
        return (0xFAB0 | rm) << 16 | 0xF080 | (ins.rd << 8) | rm
    if m == "RBIT":
        return (0xFA90 | rm) << 16 | 0xF0A0 | (ins.rd << 8) | rm
    if m == "REV":
        return (0xFA90 | rm) << 16 | 0xF080 | (ins.rd << 8) | rm
    if m == "REV16":
        return (0xFA90 | rm) << 16 | 0xF090 | (ins.rd << 8) | rm
    return None


_T2_LS_SIZE = {"LDRB": 0, "LDRH": 1, "LDR": 2, "STRB": 0, "STRH": 1, "STR": 2}


def _wide_load_store(ins: Instruction) -> int | None:
    mem = ins.mem
    if mem is None:
        return None
    m = ins.mnemonic
    signed = m in ("LDRSB", "LDRSH")
    size = {"LDRSB": 0, "LDRSH": 1}.get(m, _T2_LS_SIZE.get(m))
    if size is None:
        return None
    load = m.startswith("LDR")
    base_hw1 = 0xF800 | (1 << 8 if signed else 0) | (size << 5) | (0x10 if load else 0)
    rt = ins.rd
    if mem.rn == PC:
        if not load:
            raise EncodingError("store to literal pool")
        offset = mem.offset
        u_bit = 1 if offset >= 0 else 0
        if abs(offset) > 0xFFF:
            raise EncodingError("literal offset out of range")
        hw1 = base_hw1 | (u_bit << 7) | 0xF
        return (hw1 << 16) | (rt << 12) | abs(offset)
    if mem.rm is not None:
        if mem.writeback or mem.shift > 3:
            raise EncodingError("bad register-offset form")
        hw1 = base_hw1 | mem.rn
        hw2 = (rt << 12) | (mem.shift << 4) | mem.rm
        return (hw1 << 16) | hw2
    offset = mem.offset
    if offset >= 0 and not mem.writeback and not mem.postindex and offset <= 0xFFF:
        hw1 = base_hw1 | (1 << 7) | mem.rn  # U=1 imm12 form
        return (hw1 << 16) | (rt << 12) | offset
    if abs(offset) > 0xFF:
        raise EncodingError(f"offset {offset} out of range")
    p_bit = 0 if mem.postindex else 1
    u_bit = 1 if offset >= 0 else 0
    w_bit = 1 if (mem.writeback or mem.postindex) else 0
    hw1 = base_hw1 | mem.rn
    hw2 = (rt << 12) | 0x800 | (p_bit << 10) | (u_bit << 9) | (w_bit << 8) | abs(offset)
    return (hw1 << 16) | hw2


def _wide_block(ins: Instruction) -> int | None:
    m = ins.mnemonic
    bits = 0
    for reg in ins.reglist:
        bits |= 1 << reg
    if m == "PUSH":
        return (0xE92D << 16) | bits
    if m == "POP":
        return (0xE8BD << 16) | bits
    if m in ("LDM", "STM"):
        w_bit = 1 if ins.writeback else 0
        base = 0xE890 if m == "LDM" else 0xE880
        return ((base | (w_bit << 5) | ins.rn) << 16) | bits
    return None


def _wide_branch(ins: Instruction) -> int | None:
    m = ins.mnemonic
    if m == "TBB" or m == "TBH":
        h_bit = 1 if m == "TBH" else 0
        return ((0xE8D0 | ins.rn) << 16) | 0xF000 | (h_bit << 4) | ins.rm
    if m not in ("B", "BL") or ins.target is None or ins.address is None:
        return None
    offset = ins.target - ins.address - 4
    if m == "B" and ins.cond != Condition.AL:
        if not -(1 << 20) <= offset < (1 << 20):
            raise EncodingError(f"conditional branch offset {offset} out of range")
        s = (offset >> 20) & 1
        j2 = (offset >> 19) & 1
        j1 = (offset >> 18) & 1
        imm6 = (offset >> 12) & 0x3F
        imm11 = (offset >> 1) & 0x7FF
        hw1 = 0xF000 | (s << 10) | (ins.cond.value << 6) | imm6
        hw2 = 0x8000 | (j1 << 13) | (j2 << 11) | imm11
        return (hw1 << 16) | hw2
    if not -(1 << 24) <= offset < (1 << 24):
        raise EncodingError(f"branch offset {offset} out of range")
    s = (offset >> 24) & 1
    i1 = (offset >> 23) & 1
    i2 = (offset >> 22) & 1
    j1 = (~(i1 ^ s)) & 1
    j2 = (~(i2 ^ s)) & 1
    imm10 = (offset >> 12) & 0x3FF
    imm11 = (offset >> 1) & 0x7FF
    hw1 = 0xF000 | (s << 10) | imm10
    hw2 = (0xD000 if m == "BL" else 0x9000) | (j1 << 13) | (j2 << 11) | imm11
    return (hw1 << 16) | hw2


_WIDE_ENCODERS = (
    _wide_adr, _wide_mov16, _wide_bitfield, _wide_mul_div, _wide_unary,
    _wide_load_store, _wide_block, _wide_branch, _wide_dp,
)


def encode_wide(ins: Instruction) -> int | None:
    """Try to produce a 32-bit Thumb-2 encoding; None when none exists."""
    for encoder in _WIDE_ENCODERS:
        word = encoder(ins)
        if word is not None:
            return word
    return None


# ----------------------------------------------------------------------
# public encode entry points
# ----------------------------------------------------------------------

def encode_thumb(ins: Instruction) -> list[int]:
    """Encode for the pure 16-bit Thumb ISA.  BL is the only 32-bit form."""
    if ins.mnemonic == "BL":
        word = _wide_branch(ins)
        if word is None:
            raise EncodingError("unresolved BL")
        return [word >> 16, word & 0xFFFF]
    if ins.mnemonic == "IT":
        raise EncodingError("IT is not a Thumb (16-bit ISA) instruction")
    halfword = encode_narrow(ins)
    if halfword is None:
        raise EncodingError(f"{ins.mnemonic} not encodable in 16-bit Thumb: {ins.render()}")
    return [halfword]


def encode_thumb2(ins: Instruction) -> list[int]:
    """Encode for Thumb-2: narrow when possible, else wide."""
    if not ins.wide and ins.mnemonic != "BL":
        halfword = encode_narrow(ins)
        if halfword is not None:
            return [halfword]
    word = encode_wide(ins)
    if word is None:
        raise EncodingError(f"{ins.mnemonic} not encodable in Thumb-2: {ins.render()}")
    return [word >> 16, word & 0xFFFF]


def thumb2_width(ins: Instruction) -> int:
    """Encoding width in bytes that :func:`encode_thumb2` will pick."""
    if ins.mnemonic == "BL":
        return 4
    if not ins.wide and encode_narrow(ins) is not None:
        return 2
    return 4
