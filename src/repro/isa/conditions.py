"""ARM condition codes and their evaluation against the APSR flags."""

from __future__ import annotations

from enum import IntEnum

from repro.isa.registers import Apsr


class Condition(IntEnum):
    """The 15 ARM condition codes (NV is not modelled)."""

    EQ = 0b0000  # equal                        Z == 1
    NE = 0b0001  # not equal                    Z == 0
    CS = 0b0010  # carry set / unsigned >=      C == 1
    CC = 0b0011  # carry clear / unsigned <     C == 0
    MI = 0b0100  # minus / negative             N == 1
    PL = 0b0101  # plus / positive or zero      N == 0
    VS = 0b0110  # overflow                     V == 1
    VC = 0b0111  # no overflow                  V == 0
    HI = 0b1000  # unsigned higher              C == 1 and Z == 0
    LS = 0b1001  # unsigned lower or same       C == 0 or Z == 1
    GE = 0b1010  # signed >=                    N == V
    LT = 0b1011  # signed <                     N != V
    GT = 0b1100  # signed >                     Z == 0 and N == V
    LE = 0b1101  # signed <=                    Z == 1 or N != V
    AL = 0b1110  # always

    @property
    def inverse(self) -> "Condition":
        """The logically opposite condition (EQ <-> NE, ...)."""
        if self is Condition.AL:
            raise ValueError("AL has no inverse")
        return Condition(self.value ^ 1)

    @classmethod
    def parse(cls, text: str) -> "Condition":
        key = text.strip().upper()
        if not key:
            return cls.AL
        # HS/LO are the assembler aliases for CS/CC.
        aliases = {"HS": "CS", "LO": "CC"}
        key = aliases.get(key, key)
        try:
            return cls[key]
        except KeyError:
            raise ValueError(f"unknown condition code: {text!r}") from None


def condition_passed(cond: Condition, apsr: Apsr) -> bool:
    """Evaluate a condition code against the current flags."""
    n, z, c, v = apsr.n, apsr.z, apsr.c, apsr.v
    base = cond.value >> 1
    if base == 0b000:
        result = z
    elif base == 0b001:
        result = c
    elif base == 0b010:
        result = n
    elif base == 0b011:
        result = v
    elif base == 0b100:
        result = c and not z
    elif base == 0b101:
        result = n == v
    elif base == 0b110:
        result = (n == v) and not z
    else:  # 0b111 -> AL
        return True
    if cond.value & 1:
        result = not result
    return result
