"""Bit-level encoder/decoder for the classic ARM 32-bit instruction set.

The supported subset is exactly what :mod:`repro.codegen.lower_arm` emits
plus what the hand-written test programs use; see ``SUPPORTED`` below.  The
decoder understands everything the encoder can produce, which is what the
round-trip property tests exercise.
"""

from __future__ import annotations

from repro.isa.conditions import Condition
from repro.isa.instructions import Instruction, Mem, Shift
from repro.isa.registers import MASK32, SP

_DP_OPCODES = {
    "AND": 0x0, "EOR": 0x1, "SUB": 0x2, "RSB": 0x3,
    "ADD": 0x4, "ADC": 0x5, "SBC": 0x6,
    "TST": 0x8, "TEQ": 0x9, "CMP": 0xA, "CMN": 0xB,
    "ORR": 0xC, "MOV": 0xD, "BIC": 0xE, "MVN": 0xF,
}
_DP_BY_OPCODE = {v: k for k, v in _DP_OPCODES.items()}
_SHIFT_TYPES = {"LSL": 0, "LSR": 1, "ASR": 2, "ROR": 3}
_SHIFT_BY_TYPE = {v: k for k, v in _SHIFT_TYPES.items()}

SUPPORTED = frozenset(_DP_OPCODES) | frozenset(
    {"LSL", "LSR", "ASR", "ROR", "MUL", "MLA", "UMULL", "SMULL", "CLZ",
     "LDR", "LDRB", "LDRH", "LDRSB", "LDRSH", "STR", "STRB", "STRH",
     "LDM", "STM", "PUSH", "POP", "B", "BL", "BX", "SVC", "NOP",
     "CPSID", "CPSIE"}
)


class EncodingError(Exception):
    """The instruction cannot be represented in this instruction set."""


def encode_arm_immediate(value: int) -> tuple[int, int] | None:
    """Find (imm8, rotation) such that ROR(imm8, 2*rot) == value, or None.

    This is the classic ARM data-processing immediate: an 8-bit constant
    rotated right by an even amount.
    """
    value &= MASK32
    for rot in range(16):
        imm8 = ((value << (2 * rot)) | (value >> (32 - 2 * rot))) & MASK32 if rot else value
        if imm8 <= 0xFF:
            return imm8, rot
    return None


def arm_immediate_value(imm8: int, rot: int) -> int:
    """Inverse of :func:`encode_arm_immediate`."""
    amount = 2 * rot
    if amount == 0:
        return imm8
    return ((imm8 >> amount) | (imm8 << (32 - amount))) & MASK32


def _cond_bits(ins: Instruction) -> int:
    return ins.cond.value << 28


def _shifter_operand(ins: Instruction) -> int:
    """Bits [11:0] plus the I bit (bit 25) for a data-processing op."""
    if ins.rm is not None:
        bits = ins.rm & 0xF
        if ins.shift is not None:
            amount = ins.shift.amount
            stype = _SHIFT_TYPES[ins.shift.kind]
            if amount == 32 and ins.shift.kind in ("LSR", "ASR"):
                amount = 0  # imm5 == 0 encodes shift-by-32 for LSR/ASR
            if not 0 <= amount <= 31:
                raise EncodingError(f"shift amount {ins.shift.amount} not encodable")
            bits |= (amount << 7) | (stype << 5)
        return bits
    if ins.imm is None:
        raise EncodingError(f"{ins.mnemonic}: no second operand")
    encoded = encode_arm_immediate(ins.imm)
    if encoded is None:
        raise EncodingError(f"immediate {ins.imm:#x} not an ARM rotated constant")
    imm8, rot = encoded
    return (1 << 25) | (rot << 8) | imm8


def _encode_data_processing(ins: Instruction) -> int:
    opcode = _DP_OPCODES[ins.mnemonic]
    word = _cond_bits(ins) | (opcode << 21) | _shifter_operand(ins)
    if ins.mnemonic in ("TST", "TEQ", "CMP", "CMN"):
        word |= (1 << 20) | ((ins.rn & 0xF) << 16)
    elif ins.mnemonic in ("MOV", "MVN"):
        word |= ((ins.rd & 0xF) << 12)
        if ins.setflags:
            word |= 1 << 20
    else:
        word |= ((ins.rn & 0xF) << 16) | ((ins.rd & 0xF) << 12)
        if ins.setflags:
            word |= 1 << 20
    return word


def _encode_shift_mnemonic(ins: Instruction) -> int:
    """LSL/LSR/ASR/ROR are MOV with a shifted register operand."""
    stype = _SHIFT_TYPES[ins.mnemonic]
    word = _cond_bits(ins) | (0xD << 21) | ((ins.rd & 0xF) << 12)
    if ins.setflags:
        word |= 1 << 20
    if ins.rm is not None:  # register-controlled shift
        word |= ((ins.rm & 0xF) << 8) | (stype << 5) | (1 << 4) | (ins.rn & 0xF)
    else:
        amount = ins.imm or 0
        if amount == 32 and ins.mnemonic in ("LSR", "ASR"):
            amount = 0
        if not 0 <= amount <= 31:
            raise EncodingError(f"shift amount {ins.imm}")
        word |= (amount << 7) | (stype << 5) | (ins.rn & 0xF)
    return word


def _encode_multiply(ins: Instruction) -> int:
    cond = _cond_bits(ins)
    s_bit = (1 << 20) if ins.setflags else 0
    rm, rs = ins.rn & 0xF, ins.rm & 0xF
    if ins.mnemonic == "MUL":
        return cond | s_bit | ((ins.rd & 0xF) << 16) | (rs << 8) | 0x90 | rm
    if ins.mnemonic == "MLA":
        return cond | (1 << 21) | s_bit | ((ins.rd & 0xF) << 16) | ((ins.ra & 0xF) << 12) | (rs << 8) | 0x90 | rm
    if ins.mnemonic == "UMULL":
        return cond | (0x4 << 21) | s_bit | ((ins.ra & 0xF) << 16) | ((ins.rd & 0xF) << 12) | (rs << 8) | 0x90 | rm
    if ins.mnemonic == "SMULL":
        return cond | (0x6 << 21) | s_bit | ((ins.ra & 0xF) << 16) | ((ins.rd & 0xF) << 12) | (rs << 8) | 0x90 | rm
    raise EncodingError(ins.mnemonic)


def _mem_pubw(mem: Mem) -> tuple[int, int, int, int]:
    """(P, U, W, |offset|) bits for an addressing mode."""
    offset = mem.offset
    u_bit = 1 if offset >= 0 else 0
    if mem.postindex:
        return 0, u_bit, 0, abs(offset)
    return 1, u_bit, (1 if mem.writeback else 0), abs(offset)


def _encode_word_transfer(ins: Instruction) -> int:
    mem = ins.mem
    l_bit = 1 if ins.mnemonic.startswith("LDR") else 0
    b_bit = 1 if ins.mnemonic.endswith("B") else 0
    word = _cond_bits(ins) | (1 << 26) | (l_bit << 20) | (b_bit << 22)
    word |= ((mem.rn & 0xF) << 16) | ((ins.rd & 0xF) << 12)
    if mem.rm is not None:
        p, u, w = 1, 1, 1 if mem.writeback else 0
        word |= (1 << 25) | (p << 24) | (u << 23) | (w << 21)
        word |= ((mem.shift & 0x1F) << 7) | (mem.rm & 0xF)
    else:
        p, u, w, offset = _mem_pubw(mem)
        if offset > 0xFFF:
            raise EncodingError(f"offset {mem.offset} exceeds 12 bits")
        word |= (p << 24) | (u << 23) | (w << 21) | offset
    return word


def _encode_half_signed_transfer(ins: Instruction) -> int:
    mem = ins.mem
    sh = {"LDRH": (1, 0, 1), "STRH": (0, 0, 1), "LDRSB": (1, 1, 0), "LDRSH": (1, 1, 1)}
    l_bit, s_bit, h_bit = sh[ins.mnemonic]
    word = _cond_bits(ins) | (l_bit << 20)
    word |= ((mem.rn & 0xF) << 16) | ((ins.rd & 0xF) << 12)
    word |= 0x90 | (s_bit << 6) | (h_bit << 5)
    if mem.rm is not None:
        if mem.shift:
            raise EncodingError("halfword transfers take no shifted index")
        word |= (1 << 24) | (1 << 23) | (mem.rm & 0xF)
    else:
        p, u, w, offset = _mem_pubw(mem)
        if offset > 0xFF:
            raise EncodingError(f"offset {mem.offset} exceeds 8 bits")
        word |= (p << 24) | (u << 23) | (1 << 22) | (w << 21)
        word |= ((offset & 0xF0) << 4) | (offset & 0xF)
    return word


def _encode_block_transfer(ins: Instruction) -> int:
    reglist = 0
    for reg in ins.reglist:
        reglist |= 1 << reg
    word = _cond_bits(ins) | (1 << 27) | reglist
    if ins.mnemonic == "PUSH":
        return word | (1 << 24) | (1 << 21) | (SP << 16)  # STMDB sp!
    if ins.mnemonic == "POP":
        return word | (1 << 23) | (1 << 21) | (1 << 20) | (SP << 16)  # LDMIA sp!
    word |= (1 << 23) | ((ins.rn & 0xF) << 16)  # IA
    if ins.writeback:
        word |= 1 << 21
    if ins.mnemonic == "LDM":
        word |= 1 << 20
    return word


def _encode_branch(ins: Instruction) -> int:
    if ins.mnemonic == "BX":
        return _cond_bits(ins) | 0x012FFF10 | (ins.rm & 0xF)
    if ins.target is None or ins.address is None:
        raise EncodingError("branch not resolved")
    offset = (ins.target - ins.address - 8) >> 2
    if not -(1 << 23) <= offset < (1 << 23):
        raise EncodingError(f"branch offset {offset} out of range")
    word = _cond_bits(ins) | (0x5 << 25) | (offset & 0xFFFFFF)
    if ins.mnemonic == "BL":
        word |= 1 << 24
    return word


def encode_arm(ins: Instruction) -> int:
    """Encode one instruction as a 32-bit ARM opcode word."""
    mnemonic = ins.mnemonic
    if mnemonic in _DP_OPCODES:
        return _encode_data_processing(ins)
    if mnemonic in ("LSL", "LSR", "ASR", "ROR"):
        return _encode_shift_mnemonic(ins)
    if mnemonic in ("MUL", "MLA", "UMULL", "SMULL"):
        return _encode_multiply(ins)
    if mnemonic == "CLZ":
        return _cond_bits(ins) | 0x016F0F10 | ((ins.rd & 0xF) << 12) | (ins.rm & 0xF)
    if mnemonic in ("LDR", "LDRB", "STR", "STRB"):
        return _encode_word_transfer(ins)
    if mnemonic in ("LDRH", "STRH", "LDRSB", "LDRSH"):
        return _encode_half_signed_transfer(ins)
    if mnemonic in ("LDM", "STM", "PUSH", "POP"):
        return _encode_block_transfer(ins)
    if mnemonic in ("B", "BL", "BX"):
        return _encode_branch(ins)
    if mnemonic == "SVC":
        return _cond_bits(ins) | (0xF << 24) | ((ins.imm or 0) & 0xFFFFFF)
    if mnemonic == "NOP":
        return 0xE1A00000  # MOV r0, r0
    if mnemonic == "CPSID":
        return 0xF10C0080
    if mnemonic == "CPSIE":
        return 0xF1080080
    raise EncodingError(f"{mnemonic} has no ARM encoding in this subset")


# ----------------------------------------------------------------------
# decoder
# ----------------------------------------------------------------------

def _decode_shifter(word: int) -> tuple[int | None, Shift | None, int | None, int | None]:
    """Decode bits[11:0] of a register-form DP op: (rm, shift, rs, None)."""
    rm = word & 0xF
    stype = _SHIFT_BY_TYPE[(word >> 5) & 3]
    if word & (1 << 4):  # register-controlled shift; caller re-extracts type
        rs = (word >> 8) & 0xF
        return rm, None, rs, None
    amount = (word >> 7) & 0x1F
    if amount == 0 and stype in ("LSR", "ASR"):
        amount = 32
    if amount == 0 and stype == "LSL":
        return rm, None, None, None
    return rm, Shift(stype, amount), None, None


def decode_arm(word: int, address: int = 0) -> Instruction:
    """Decode a 32-bit ARM opcode produced by :func:`encode_arm`."""
    if word == 0xE1A00000:
        return Instruction("NOP", address=address, size=4)
    if word == 0xF10C0080:
        return Instruction("CPSID", address=address, size=4)
    if word == 0xF1080080:
        return Instruction("CPSIE", address=address, size=4)
    cond = Condition((word >> 28) & 0xF)
    if (word & 0x0FFFFFF0) == 0x012FFF10:
        return Instruction("BX", cond=cond, rm=word & 0xF, address=address, size=4)
    if (word & 0x0FFF0FF0) == 0x016F0F10:
        return Instruction("CLZ", cond=cond, rd=(word >> 12) & 0xF, rm=word & 0xF,
                           address=address, size=4)
    if (word & 0x0F000000) == 0x0F000000:
        return Instruction("SVC", cond=cond, imm=word & 0xFFFFFF, address=address, size=4)
    if (word & 0x0E000000) == 0x0A000000:  # B/BL
        offset = word & 0xFFFFFF
        if offset & (1 << 23):
            offset -= 1 << 24
        target = (address + 8 + (offset << 2)) & MASK32
        mnemonic = "BL" if word & (1 << 24) else "B"
        return Instruction(mnemonic, cond=cond, target=target, address=address, size=4)
    if (word & 0x0FC000F0) in (0x00000090, 0x00200090, 0x00800090, 0x00C00090):
        return _decode_multiply(word, cond, address)
    if (word & 0x0E000090) == 0x00000090 and (word & 0x60):  # halfword/signed
        return _decode_half_signed(word, cond, address)
    if (word & 0x0C000000) == 0x04000000 or (word & 0x0E000010) == 0x06000000:
        return _decode_word_transfer(word, cond, address)
    if (word & 0x0E000000) == 0x08000000:
        return _decode_block_transfer(word, cond, address)
    if (word & 0x0C000000) == 0x00000000:
        return _decode_data_processing(word, cond, address)
    raise EncodingError(f"cannot decode ARM word {word:#010x}")


def _decode_multiply(word: int, cond: Condition, address: int) -> Instruction:
    setflags = bool(word & (1 << 20))
    variant = (word >> 21) & 0x7
    rm, rs = word & 0xF, (word >> 8) & 0xF
    hi, lo = (word >> 16) & 0xF, (word >> 12) & 0xF
    if variant == 0:
        return Instruction("MUL", cond=cond, setflags=setflags, rd=hi, rn=rm, rm=rs,
                           address=address, size=4)
    if variant == 1:
        return Instruction("MLA", cond=cond, setflags=setflags, rd=hi, rn=rm, rm=rs,
                           ra=lo, address=address, size=4)
    mnemonic = "UMULL" if variant == 4 else "SMULL"
    return Instruction(mnemonic, cond=cond, setflags=setflags, rd=lo, ra=hi, rn=rm,
                       rm=rs, address=address, size=4)


def _decode_data_processing(word: int, cond: Condition, address: int) -> Instruction:
    opcode = (word >> 21) & 0xF
    mnemonic = _DP_BY_OPCODE.get(opcode)
    if mnemonic is None:
        raise EncodingError(f"DP opcode {opcode:#x}")
    setflags = bool(word & (1 << 20))
    rn = (word >> 16) & 0xF
    rd = (word >> 12) & 0xF
    if word & (1 << 25):  # immediate
        imm = arm_immediate_value(word & 0xFF, (word >> 8) & 0xF)
        rm, shift, rs = None, None, None
    else:
        rm, shift, rs, _ = _decode_shifter(word)
        imm = None
    kwargs = dict(cond=cond, address=address, size=4)
    if rs is not None:  # register-controlled shift => standalone shift mnemonic
        stype = _SHIFT_BY_TYPE[(word >> 5) & 3]
        return Instruction(stype, setflags=setflags, rd=rd, rn=rm, rm=rs, **kwargs)
    if shift is not None and mnemonic == "MOV":
        return Instruction(shift.kind, setflags=setflags, rd=rd, rn=rm,
                           imm=shift.amount, **kwargs)
    if mnemonic in ("TST", "TEQ", "CMP", "CMN"):
        return Instruction(mnemonic, rn=rn, rm=rm, imm=imm, shift=shift, **kwargs)
    if mnemonic in ("MOV", "MVN"):
        return Instruction(mnemonic, setflags=setflags, rd=rd, rm=rm, imm=imm,
                           shift=shift, **kwargs)
    return Instruction(mnemonic, setflags=setflags, rd=rd, rn=rn, rm=rm, imm=imm,
                       shift=shift, **kwargs)


def _decode_word_transfer(word: int, cond: Condition, address: int) -> Instruction:
    l_bit = bool(word & (1 << 20))
    b_bit = bool(word & (1 << 22))
    mnemonic = ("LDR" if l_bit else "STR") + ("B" if b_bit else "")
    rn = (word >> 16) & 0xF
    rd = (word >> 12) & 0xF
    p_bit = bool(word & (1 << 24))
    u_bit = bool(word & (1 << 23))
    w_bit = bool(word & (1 << 21))
    if word & (1 << 25):  # register offset
        mem = Mem(rn=rn, rm=word & 0xF, shift=(word >> 7) & 0x1F, writeback=w_bit)
    else:
        offset = word & 0xFFF
        if not u_bit:
            offset = -offset
        if p_bit:
            mem = Mem(rn=rn, offset=offset, writeback=w_bit)
        else:
            mem = Mem(rn=rn, offset=offset, postindex=True)
    return Instruction(mnemonic, cond=cond, rd=rd, mem=mem, address=address, size=4)


def _decode_half_signed(word: int, cond: Condition, address: int) -> Instruction:
    l_bit = bool(word & (1 << 20))
    s_bit = bool(word & (1 << 6))
    h_bit = bool(word & (1 << 5))
    if l_bit:
        mnemonic = {(False, True): "LDRH", (True, False): "LDRSB", (True, True): "LDRSH"}[(s_bit, h_bit)]
    else:
        mnemonic = "STRH"
    rn = (word >> 16) & 0xF
    rd = (word >> 12) & 0xF
    p_bit = bool(word & (1 << 24))
    u_bit = bool(word & (1 << 23))
    w_bit = bool(word & (1 << 21))
    if word & (1 << 22):  # immediate form
        offset = ((word >> 4) & 0xF0) | (word & 0xF)
        if not u_bit:
            offset = -offset
        mem = Mem(rn=rn, offset=offset, writeback=w_bit and p_bit, postindex=not p_bit)
    else:
        mem = Mem(rn=rn, rm=word & 0xF)
    return Instruction(mnemonic, cond=cond, rd=rd, mem=mem, address=address, size=4)


def _decode_block_transfer(word: int, cond: Condition, address: int) -> Instruction:
    reglist = tuple(r for r in range(16) if word & (1 << r))
    rn = (word >> 16) & 0xF
    l_bit = bool(word & (1 << 20))
    w_bit = bool(word & (1 << 21))
    p_bit = bool(word & (1 << 24))
    u_bit = bool(word & (1 << 23))
    if rn == SP and w_bit and p_bit and not u_bit and not l_bit:
        return Instruction("PUSH", cond=cond, reglist=reglist, address=address, size=4)
    if rn == SP and w_bit and not p_bit and u_bit and l_bit:
        return Instruction("POP", cond=cond, reglist=reglist, address=address, size=4)
    mnemonic = "LDM" if l_bit else "STM"
    return Instruction(mnemonic, cond=cond, rn=rn, reglist=reglist, writeback=w_bit,
                       address=address, size=4)
