"""The decoded-instruction model shared by all three instruction sets.

A single :class:`Instruction` dataclass represents an assembled operation in
any of the three ISAs this library models (ARM 32-bit, Thumb 16-bit, and
Thumb-2 mixed 16/32-bit).  The instruction set an instruction belongs to is a
property of the surrounding :class:`~repro.isa.assembler.Program`; the
*encoding width* (2 or 4 bytes) is stored per instruction because Thumb-2
mixes both.

Keeping one concrete class (rather than a class per mnemonic) keeps the
semantic interpreter a flat dispatch table and makes property-based testing
of encoder/decoder round trips straightforward.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.isa.conditions import Condition

#: Instruction-set identifiers.
ISA_ARM = "arm"
ISA_THUMB = "thumb"
ISA_THUMB2 = "thumb2"

ALL_ISAS = (ISA_ARM, ISA_THUMB, ISA_THUMB2)


@dataclass(frozen=True)
class Shift:
    """A barrel-shifter operation applied to the second operand."""

    kind: str  # 'LSL' | 'LSR' | 'ASR' | 'ROR'
    amount: int

    KINDS = ("LSL", "LSR", "ASR", "ROR")

    def __post_init__(self) -> None:
        if self.kind not in self.KINDS:
            raise ValueError(f"bad shift kind {self.kind!r}")
        if not 0 <= self.amount <= 32:
            raise ValueError(f"bad shift amount {self.amount}")


@dataclass(frozen=True)
class Mem:
    """Addressing mode for single load/store instructions.

    ``rm is None`` selects immediate-offset addressing ``[rn, #offset]``;
    otherwise register-offset ``[rn, rm, LSL #shift]``.  ``writeback`` with
    ``postindex=False`` is pre-indexed ``[rn, #offset]!``; with
    ``postindex=True`` the offset is applied after the access.
    """

    rn: int
    offset: int = 0
    rm: int | None = None
    shift: int = 0
    writeback: bool = False
    postindex: bool = False


# Mnemonics grouped by operand shape; the semantic interpreter and the
# encoders both key off these sets.
DATA2_OPS = frozenset({"MOV", "MVN", "CLZ", "RBIT", "REV", "REV16", "SXTB", "SXTH", "UXTB", "UXTH"})
DATA3_OPS = frozenset(
    {"ADD", "ADC", "SUB", "SBC", "RSB", "AND", "ORR", "EOR", "BIC", "ORN",
     "LSL", "LSR", "ASR", "ROR", "MUL", "SDIV", "UDIV"}
)
COMPARE_OPS = frozenset({"CMP", "CMN", "TST", "TEQ"})
MUL_ACC_OPS = frozenset({"MLA", "MLS"})
LONG_MUL_OPS = frozenset({"UMULL", "SMULL"})
LOAD_OPS = frozenset({"LDR", "LDRB", "LDRH", "LDRSB", "LDRSH"})
STORE_OPS = frozenset({"STR", "STRB", "STRH"})
BLOCK_OPS = frozenset({"LDM", "STM", "PUSH", "POP"})
BRANCH_OPS = frozenset({"B", "BL", "BX", "BLX"})
BITFIELD_OPS = frozenset({"BFI", "BFC", "UBFX", "SBFX"})
SYSTEM_OPS = frozenset({"NOP", "CPSID", "CPSIE", "SVC", "WFI", "BKPT", "DSB", "ISB"})
TABLE_BRANCH_OPS = frozenset({"TBB", "TBH"})

ALL_MNEMONICS = (
    DATA2_OPS | DATA3_OPS | COMPARE_OPS | MUL_ACC_OPS | LONG_MUL_OPS
    | LOAD_OPS | STORE_OPS | BLOCK_OPS | BRANCH_OPS | BITFIELD_OPS
    | SYSTEM_OPS | TABLE_BRANCH_OPS
    | {"MOVW", "MOVT", "IT", "ADR"}
)


@dataclass
class Instruction:
    """One assembled instruction.

    Fields are a union over all operand shapes; which ones are meaningful is
    determined by ``mnemonic``.  ``label`` holds an unresolved branch target
    (or literal symbol) until the assembler's link pass fills in ``target``.
    """

    mnemonic: str
    cond: Condition = Condition.AL
    setflags: bool = False
    rd: int | None = None
    rn: int | None = None
    rm: int | None = None
    ra: int | None = None          # accumulator (MLA) / RdHi (long multiply)
    imm: int | None = None         # immediate operand
    shift: Shift | None = None     # shift on rm
    mem: Mem | None = None         # load/store addressing mode
    reglist: tuple[int, ...] = ()  # LDM/STM/PUSH/POP
    writeback: bool = False        # LDM/STM base writeback
    label: str | None = None       # unresolved branch/literal symbol
    target: int | None = None      # resolved absolute branch target
    it_mask: str = ""              # IT block pattern, e.g. 'T', 'TE', 'TTE'
    bf_lsb: int | None = None      # bitfield ops: least significant bit
    bf_width: int | None = None    # bitfield ops: field width
    wide: bool = False             # Thumb-2: force 32-bit encoding (.W)
    size: int = 4                  # encoding width in bytes (2 or 4)
    address: int | None = None     # assigned by the assembler layout pass
    encoding: int | None = None    # raw opcode bits once encoded

    def __post_init__(self) -> None:
        if self.mnemonic not in ALL_MNEMONICS:
            raise ValueError(f"unknown mnemonic {self.mnemonic!r}")
        if self.size not in (2, 4):
            raise ValueError(f"bad instruction size {self.size}")

    # ------------------------------------------------------------------
    def uses_immediate(self) -> bool:
        return self.imm is not None and self.rm is None

    def is_branch(self) -> bool:
        return self.mnemonic in BRANCH_OPS or self.mnemonic in TABLE_BRANCH_OPS

    def is_memory_access(self) -> bool:
        return (
            self.mnemonic in LOAD_OPS
            or self.mnemonic in STORE_OPS
            or self.mnemonic in BLOCK_OPS
            or self.mnemonic in TABLE_BRANCH_OPS
        )

    def is_load_literal(self) -> bool:
        """True for PC-relative loads (literal-pool fetches)."""
        from repro.isa.registers import PC

        return self.mnemonic == "LDR" and self.mem is not None and self.mem.rn == PC

    def copy(self, **changes) -> "Instruction":
        return replace(self, **changes)

    # ------------------------------------------------------------------
    def render(self) -> str:
        """Assembler-style text for diagnostics and the disassembler."""
        from repro.isa.registers import register_name

        mnem = self.mnemonic
        if self.mnemonic == "IT":
            return f"IT{self.it_mask[1:] if len(self.it_mask) > 1 else ''} {self.cond.name.lower()}"
        suffix = ""
        if self.setflags:
            suffix += "S"
        if self.cond != Condition.AL and mnem != "B":
            suffix += self.cond.name
        if mnem == "B" and self.cond != Condition.AL:
            mnem = f"B{self.cond.name}"
        ops: list[str] = []
        for reg in (self.rd, self.rn if self.mem is None else None):
            if reg is not None:
                ops.append(register_name(reg))
        if self.mem is not None:
            base = register_name(self.mem.rn)
            if self.mem.rm is not None:
                inner = f"[{base}, {register_name(self.mem.rm)}"
                if self.mem.shift:
                    inner += f", lsl #{self.mem.shift}"
                ops.append(inner + "]")
            elif self.mem.postindex:
                ops.append(f"[{base}], #{self.mem.offset}")
            else:
                wb = "!" if self.mem.writeback else ""
                ops.append(f"[{base}, #{self.mem.offset}]{wb}")
        elif self.rm is not None:
            text = register_name(self.rm)
            if self.shift is not None and self.shift.amount:
                text += f", {self.shift.kind.lower()} #{self.shift.amount}"
            ops.append(text)
        if self.ra is not None:
            ops.append(register_name(self.ra))
        if self.imm is not None and self.rm is None and self.mem is None:
            ops.append(f"#{self.imm}")
        if self.reglist:
            ops.append("{" + ", ".join(register_name(r) for r in self.reglist) + "}")
        if self.label is not None and self.target is None:
            ops.append(self.label)
        elif self.target is not None and self.is_branch():
            ops.append(f"0x{self.target:x}")
        return f"{mnem}{suffix} " + ", ".join(ops) if ops else f"{mnem}{suffix}"


def instr(mnemonic: str, **kwargs) -> Instruction:
    """Shorthand constructor used heavily by the code generators and tests."""
    return Instruction(mnemonic=mnemonic, **kwargs)
