"""Guest ECU firmware: real assembled kernels for the virtual vehicle.

Every ECU role is a tiny interrupt-driven firmware written in the common
Thumb subset (assembles unchanged for the ARM7's Thumb and the
Cortex-M3/ARM1156's Thumb-2): the main program parks on ``WFI`` and all
work happens in ISRs that do real MMIO against the node's network
controllers (:mod:`repro.vehicle.controllers`).

Handlers deliberately use only ``r0-r3``:

* on the VIC cores (ARM7, ARM1156) the idle main loop owns no registers
  and interrupts are masked for the handler's duration, so no software
  preamble is needed;
* on the Cortex-M3 the NVIC's hardware stacking covers exactly
  ``r0-r3, r12`` - the paper's section 3.2.1 "handlers are plain
  functions" point - which also makes same-priority re-raises tail-chain
  safely.

Each template is instantiated per node (CAN identifiers, device bases)
via :class:`string.Template`, and every transform an ISR applies has a
pure-Python mirror here so end-to-end values can be verified exactly.
"""

from __future__ import annotations

from string import Template

from repro.vehicle.controllers import (
    ACTUATOR_BASE,
    CAN_CONTROLLER_BASE,
    LIN_CONTROLLER_BASE,
    SENSOR_BASE,
)

MASK16 = 0xFFFF

#: SRAM scratch addresses guest firmware owns (far below the stack)
GATEWAY_CHECKSUM_ADDR = 0x2000_0040
ROUNDTRIP_SEQ_ADDR = 0x2000_0020
ROUNDTRIP_ACC_ADDR = 0x2000_0030

#: sensor ISR filter iterations (a real loop for the trace engine to fuse)
FILTER_ITERATIONS = 6

_IDLE = """
main:
    wfi
    b main
"""

#: sample in, filter loop, CAN frame out (sensor ECU)
SENSOR_TEMPLATE = Template(_IDLE + """
timer_isr:
    ldr r0, =$sensor_base
    ldr r1, [r0, #0]
    lsls r2, r1, #16
    lsrs r2, r2, #16
    movs r3, #$filter_iters
    movs r0, #0
filter:
    adds r0, r0, r2
    lsrs r0, r0, #1
    adds r0, r0, #3
    subs r3, r3, #1
    bne filter
    lsls r0, r0, #16
    lsrs r0, r0, #16
    lsrs r1, r1, #16
    lsls r1, r1, #16
    orrs r1, r1, r0
    ldr r0, =$can_base
    ldr r2, =$can_id
    str r2, [r0, #0]
    str r1, [r0, #4]
    str r2, [r0, #8]
    bx lr
""")


def sensor_filter(raw: int, iterations: int = FILTER_ITERATIONS) -> int:
    """Python mirror of the sensor ISR's filter loop."""
    acc = 0
    for _ in range(iterations):
        acc = ((acc + raw) >> 1) + 3
    return acc & MASK16


#: CAN in; the designated signal is transformed and published to LIN,
#: everything else folds into a checksum; every receipt is tap-logged
GATEWAY_TEMPLATE = Template(_IDLE + """
can_rx_isr:
    ldr r0, =$can_base
poll:
    ldr r1, [r0, #0x14]
    cmp r1, #0
    beq done
    ldr r1, [r0, #0x0C]
    ldr r2, [r0, #0x10]
    str r1, [r0, #0x14]
    ldr r3, =$forward_id
    cmp r1, r3
    bne other
    lsls r3, r2, #16
    lsrs r3, r3, #16
    lsrs r2, r2, #16
    lsls r2, r2, #16
    lsls r1, r3, #1
    adds r3, r3, r1
    adds r3, r3, #7
    lsls r3, r3, #16
    lsrs r3, r3, #16
    orrs r2, r2, r3
    ldr r3, =$lin_base
    str r2, [r3, #0]
    ldr r3, =$act_base
    ldr r1, =$forward_id
    str r1, [r3, #8]
    str r2, [r3, #0]
    b poll
other:
    ldr r3, =$act_base
    str r1, [r3, #8]
    str r2, [r3, #0]
    ldr r3, =$checksum_addr
    ldr r1, [r3, #0]
    eors r1, r1, r2
    adds r1, r1, #1
    str r1, [r3, #0]
    b poll
done:
    bx lr
""")


def gateway_transform(value: int) -> int:
    """Python mirror of the gateway's forward-path transform."""
    return (3 * value + 7) & MASK16


def gateway_checksum(checksum: int, word: int) -> int:
    """Python mirror of the gateway's non-forwarded accumulation."""
    return ((checksum ^ word) + 1) & 0xFFFFFFFF


#: LIN in, actuator register out (window-lift slave ECU)
ACTUATOR_TEMPLATE = Template(_IDLE + """
lin_rx_isr:
    ldr r0, =$lin_base
poll:
    ldr r1, [r0, #0x0C]
    cmp r1, #0
    beq done
    ldr r1, [r0, #0x04]
    ldr r2, [r0, #0x08]
    str r1, [r0, #0x0C]
    ldr r3, =$act_base
    str r1, [r3, #8]
    str r2, [r3, #0]
    b poll
done:
    bx lr
""")

#: two-node round trip, requester side: timer sends an incrementing
#: sequence word, responses accumulate into SRAM (checksum + count)
ROUNDTRIP_REQUESTER_TEMPLATE = Template(_IDLE + """
timer_isr:
    ldr r0, =$seq_addr
    ldr r1, [r0, #0]
    adds r1, r1, #1
    str r1, [r0, #0]
    ldr r0, =$can_base
    ldr r2, =$tx_id
    str r2, [r0, #0]
    str r1, [r0, #4]
    str r2, [r0, #8]
    bx lr

can_rx_isr:
    ldr r0, =$can_base
poll:
    ldr r1, [r0, #0x14]
    cmp r1, #0
    beq done
    ldr r1, [r0, #0x0C]
    ldr r2, [r0, #0x10]
    str r1, [r0, #0x14]
    ldr r3, =$acc_addr
    ldr r1, [r3, #0]
    eors r1, r1, r2
    adds r1, r1, #5
    str r1, [r3, #0]
    ldr r1, [r3, #4]
    adds r1, r1, #1
    str r1, [r3, #4]
    b poll
done:
    bx lr
""")

#: round trip, responder side: word + 1 comes straight back
ROUNDTRIP_RESPONDER_TEMPLATE = Template(_IDLE + """
can_rx_isr:
    ldr r0, =$can_base
poll:
    ldr r1, [r0, #0x14]
    cmp r1, #0
    beq done
    ldr r1, [r0, #0x0C]
    ldr r2, [r0, #0x10]
    str r1, [r0, #0x14]
    adds r2, r2, #1
    ldr r3, =$tx_id
    str r3, [r0, #0]
    str r2, [r0, #4]
    str r3, [r0, #8]
    b poll
done:
    bx lr
""")


def requester_accumulate(acc: int, word: int) -> int:
    """Python mirror of the requester's response accumulation."""
    return ((acc ^ word) + 5) & 0xFFFFFFFF


def sensor_source(can_id: int) -> str:
    return SENSOR_TEMPLATE.substitute(
        sensor_base=f"{SENSOR_BASE:#x}", can_base=f"{CAN_CONTROLLER_BASE:#x}",
        can_id=f"{can_id:#x}", filter_iters=FILTER_ITERATIONS)


def gateway_source(forward_id: int) -> str:
    return GATEWAY_TEMPLATE.substitute(
        can_base=f"{CAN_CONTROLLER_BASE:#x}",
        lin_base=f"{LIN_CONTROLLER_BASE:#x}",
        act_base=f"{ACTUATOR_BASE:#x}", forward_id=f"{forward_id:#x}",
        checksum_addr=f"{GATEWAY_CHECKSUM_ADDR:#x}")


def actuator_source() -> str:
    return ACTUATOR_TEMPLATE.substitute(
        lin_base=f"{LIN_CONTROLLER_BASE:#x}", act_base=f"{ACTUATOR_BASE:#x}")


def requester_source(tx_id: int) -> str:
    return ROUNDTRIP_REQUESTER_TEMPLATE.substitute(
        can_base=f"{CAN_CONTROLLER_BASE:#x}", tx_id=f"{tx_id:#x}",
        seq_addr=f"{ROUNDTRIP_SEQ_ADDR:#x}",
        acc_addr=f"{ROUNDTRIP_ACC_ADDR:#x}")


def responder_source(tx_id: int) -> str:
    return ROUNDTRIP_RESPONDER_TEMPLATE.substitute(
        can_base=f"{CAN_CONTROLLER_BASE:#x}", tx_id=f"{tx_id:#x}")
