"""Virtual vehicle: cycle-coupled multi-ECU co-simulation.

Real CPU-core models running real assembled firmware, wired to the
discrete-event CAN bus and the LIN sub-bus through memory-mapped network
controllers, all on one shared clock - see :mod:`repro.vehicle.vehicle`
for the composition model, the determinism contract, and the parallel
lookahead/merge contract (``run(parallel=N)`` advances every ECU's
quantum concurrently under the declared TX lookahead, byte-identical
to the serial pump).
"""

from repro.vehicle.controllers import (
    ActuatorDevice,
    CanController,
    LinController,
    MmioDevice,
    SensorDevice,
)
from repro.vehicle.ecu import (
    IRQ_DELIVERY_CYCLES,
    TX_DELAY_US,
    CosimDeterminismError,
    Ecu,
)
from repro.vehicle.faults import (
    FAULT_KINDS,
    VERDICT_CLAIMS,
    BabblingIdiot,
    BusOffStorm,
    FaultScenario,
    FaultSpec,
    FirmwareSoftError,
    GatewayOverload,
    LinSlotFault,
    scenario_for,
    synthesize_fault,
)
from repro.vehicle.vehicle import (
    BodyNetwork,
    BodyNetworkReport,
    BodyNetworkSpec,
    RoundTrip,
    RoundTripSpec,
    SensorNode,
    SignalObservation,
    VirtualVehicle,
    build_body_network,
    build_guest_machine,
    build_round_trip,
    sample_raw,
)

__all__ = [
    "ActuatorDevice", "CanController", "LinController", "MmioDevice",
    "SensorDevice",
    "IRQ_DELIVERY_CYCLES", "TX_DELAY_US", "CosimDeterminismError", "Ecu",
    "FAULT_KINDS", "VERDICT_CLAIMS", "BabblingIdiot", "BusOffStorm",
    "FaultScenario", "FaultSpec", "FirmwareSoftError", "GatewayOverload",
    "LinSlotFault", "scenario_for", "synthesize_fault",
    "BodyNetwork", "BodyNetworkReport", "BodyNetworkSpec", "RoundTrip",
    "RoundTripSpec", "SensorNode", "SignalObservation", "VirtualVehicle",
    "build_body_network", "build_guest_machine", "build_round_trip",
    "sample_raw",
]
