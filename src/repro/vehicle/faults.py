"""Deterministic fault scenarios composable onto a virtual vehicle.

Real automotive qualification is about behavior *under faults*: the
healthy sweeps the campaign runs elsewhere say nothing about what a
babbling node or a cosmic-ray upset does to the window lift.  This module
turns the classic automotive failure modes into deterministic, RNG-seeded
scenarios that arm onto any built :class:`~repro.vehicle.vehicle.
BodyNetwork` before its run:

* **babbling idiot** - an off-spec node spamming a high-priority
  identifier for a window, starving every legitimate stream of
  arbitration (the canonical argument for bus guardians);
* **bus-off storm** - a node whose every transmission in a window is
  corrupted, driving its TEC through error-passive to bus-off, recovery,
  and renewed bus-off (exercising the CAN fault-confinement model in
  :mod:`repro.network.can_bus`);
* **gateway RX overload** - the gateway's receive drain stalls for a
  window while an intruder floods an accepted identifier, overflowing
  the RX FIFO (frames drop, counted) until a drain at window end;
* **stuck / dropped LIN slots** - a wedged or dead LIN slave: the slot
  replays its stale response, or answers nothing at all;
* **firmware soft error** - bit flips inside a live ECU's SRAM mid
  co-simulation (composing :class:`~repro.memory.faults.
  SoftErrorInjector` with the co-sim clock), landing at the guest's next
  WFI boundary so the corruption point is a pure function of the
  instruction stream - byte-identical across engine tiers and quanta.

Every scenario computes **per-claim safety verdicts** after the run
(:data:`VERDICT_CLAIMS`): latency bounds held, frame conservation,
fail-silence of the faulted node, and recovery within the scenario's
deadline - the Driverator-style checks the ``vehicle_fault`` campaign
domain records per cell against a fault-free twin.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.faults import SoftErrorInjector
from repro.network.can_bus import BUS_OFF_RECOVERY_BITS
from repro.network.can_frame import CanFrame
from repro.sim.rng import DeterministicRng
from repro.vehicle import firmware

#: the safety claims every fault cell carries a verdict for
VERDICT_CLAIMS = ("latency_bound", "frame_conservation", "fail_silence",
                  "recovery")

#: every scenario kind :func:`synthesize_fault` can produce
FAULT_KINDS = ("babbling-idiot", "bus-off-storm", "gateway-overload",
               "lin-drop", "lin-stuck", "soft-error")

#: node labels for traffic the fault layer injects directly on the wire
BABBLER_NODE = "babbler"
INTRUDER_NODE = "intruder"

#: the babbler's identifier: beats every synthesized sensor id (>= 0x100)
BABBLE_CAN_ID = 0x010

_BABBLE_PAYLOAD = b"\xfa\x17\x00\x00"
#: the intruder spoofs a garbage sequence number (0xFFFF) so any frame
#: that survives to the gateway is detectably invalid
_SPOOF_WORD = (0xFFFF << 16) | 0x3FF


@dataclass(frozen=True)
class FaultSpec:
    """Pure-data description of one fault scenario (campaign-cell safe)."""

    kind: str
    node: str = ""              # faulted node's label
    can_id: int = 0             # babble / victim / spoofed / LIN frame id
    start_us: int = 0
    end_us: int = 0
    period_us: int = 0          # injected-traffic period (babble / spam)
    flips: int = 1              # soft-error bit flips
    seed: int = 0               # soft-error rng seed
    recovery_deadline_us: int = 50_000

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.end_us < self.start_us:
            raise ValueError("fault window ends before it starts")


def synthesize_fault(rng: DeterministicRng, kind: str, network_spec,
                     horizon_us: int) -> FaultSpec:
    """A fault spec for one network: pure function of the rng stream.

    The fault window sits in the middle of the horizon (roughly 25%-55%)
    so there is healthy traffic before it and room to observe recovery
    after it; per-kind parameters (babble period, storm victim, spoofed
    identifier, recovery deadline) derive from the network spec.
    """
    start = horizon_us // 4 + rng.randint(0, max(horizon_us // 20, 1))
    end = start + (horizon_us * 3) // 10
    max_period = max(node.period_us for node in network_spec.sensors)
    wire_us = -(-CanFrame(BABBLE_CAN_ID, _BABBLE_PAYLOAD).wire_bits
                * 1_000_000 // network_spec.can_bitrate)
    if kind == "babbling-idiot":
        # one babble frame is always pending when the previous completes,
        # so the babbler wins every arbitration inside the window
        return FaultSpec(kind=kind, node=BABBLER_NODE, can_id=BABBLE_CAN_ID,
                         start_us=start, end_us=end,
                         period_us=max(wire_us - 1, 1),
                         recovery_deadline_us=3 * max_period)
    if kind == "bus-off-storm":
        # the lowest identifier retries straight back into arbitration,
        # so its TEC climbs at wire speed and bus-off is reached in-window
        victim = min(network_spec.sensors, key=lambda node: node.can_id)
        recovery_us = -(-BUS_OFF_RECOVERY_BITS * 1_000_000
                        // network_spec.can_bitrate)
        return FaultSpec(kind=kind, node=victim.name, can_id=victim.can_id,
                         start_us=start, end_us=end,
                         recovery_deadline_us=3 * max_period + 2 * recovery_us)
    if kind == "gateway-overload":
        if len(network_spec.sensors) < 2:
            raise ValueError(
                "gateway-overload needs >= 2 sensors: the intruder spoofs "
                "a non-forwarded identifier so the actuator stays clean")
        spoofed = next(node for index, node in enumerate(network_spec.sensors)
                       if index != network_spec.forward_index)
        return FaultSpec(kind=kind, node=INTRUDER_NODE,
                         can_id=spoofed.can_id,
                         start_us=start, end_us=end, period_us=2 * wire_us,
                         recovery_deadline_us=3 * max_period)
    if kind in ("lin-drop", "lin-stuck"):
        return FaultSpec(kind=kind, node="lin-slave",
                         can_id=network_spec.lin_frame_id,
                         start_us=start, end_us=end,
                         recovery_deadline_us=(3 * max_period
                                               + 3 * network_spec.lin_slot_us))
    if kind == "soft-error":
        return FaultSpec(kind=kind, node="gateway", start_us=start,
                         end_us=start + 1, flips=1,
                         seed=rng.randint(0, 2**31 - 1),
                         recovery_deadline_us=3 * max_period)
    raise ValueError(f"unknown fault kind {kind!r}")


# ----------------------------------------------------------------------
# verdict helpers
# ----------------------------------------------------------------------

def _actuator_clean(network) -> bool:
    """Every value the actuator applied is a genuine mirrored command."""
    spec = network.spec
    forward = spec.sensors[spec.forward_index]
    log = network.generated[forward.name]
    for applied in network.actuator_out.applied:
        if applied.ident != spec.lin_frame_id:
            return False
        seq = applied.word >> 16
        if seq == 0:
            continue    # reset buffer, no command published yet
        if not 1 <= seq <= len(log):
            return False
        if applied.word != network.expected_word(forward, seq,
                                                 transformed=True):
            return False
    return True


def _recovered_by(times, end_us: int, deadline_us: int) -> bool:
    """Normal service observed inside the post-fault recovery window."""
    return any(end_us <= t <= end_us + deadline_us for t in times)


# ----------------------------------------------------------------------
# the scenarios
# ----------------------------------------------------------------------

class FaultScenario:
    """One armed fault: inject before the run, judge claims after it."""

    def __init__(self, fault: FaultSpec) -> None:
        self.fault = fault
        self.activations = 0    # injected frames / faulted slots / flips

    def arm(self, network) -> None:
        raise NotImplementedError

    # -- the four claims ------------------------------------------------
    def verdicts(self, network, report) -> dict:
        conservation = network.vehicle.frame_conservation()
        return {
            "latency_bound": report.bound_violations == 0,
            "frame_conservation": (report.conservation_ok
                                   and conservation["conserved"]),
            "fail_silence": self.fail_silent(network, report),
            "recovery": self.recovered(network, report),
        }

    def fail_silent(self, network, report) -> bool:
        """Default: the fault never surfaced a wrong value at the
        actuator (the faulted component failed without lying)."""
        return _actuator_clean(network)

    def recovered(self, network, report) -> bool:
        """Default: a valid sensor frame reached the gateway application
        within the deadline after the fault window closed."""
        by_id = {node.can_id: node for node in network.spec.sensors}
        times = []
        for applied in network.gateway_tap.applied:
            node = by_id.get(applied.ident)
            if node is None:
                continue
            seq = applied.word >> 16
            if 1 <= seq <= len(network.generated[node.name]):
                times.append(applied.at_us)
        return _recovered_by(times, self.fault.end_us,
                             self.fault.recovery_deadline_us)


class BabblingIdiot(FaultScenario):
    """An off-spec node spamming a high-priority id inside the window."""

    def arm(self, network) -> None:
        bus = network.vehicle.can
        scheduler = bus.scheduler
        fault = self.fault

        def babble() -> None:
            if scheduler.now >= fault.end_us:
                return
            self.activations += 1
            bus.submit(CanFrame(fault.can_id, _BABBLE_PAYLOAD),
                       node=fault.node, injected=True)
            scheduler.after(fault.period_us, babble)

        scheduler.at(fault.start_us, babble)

    def fail_silent(self, network, report) -> bool:
        # a babbling idiot is the textbook fail-silence violation: its
        # frames occupy the bus (no guardian cut it off)
        return not any(d.node == self.fault.node
                       for d in network.vehicle.can.deliveries)

    def recovered(self, network, report) -> bool:
        sensor_ids = {node.can_id for node in network.spec.sensors}
        times = [d.completed_at for d in network.vehicle.can.deliveries
                 if d.can_id in sensor_ids]
        return _recovered_by(times, self.fault.end_us,
                             self.fault.recovery_deadline_us)


class BusOffStorm(FaultScenario):
    """Every transmission of one node fails inside the window."""

    def arm(self, network) -> None:
        network.vehicle.can.force_error_window(
            self.fault.node, self.fault.start_us, self.fault.end_us)

    def fail_silent(self, network, report) -> bool:
        # bus-off is fault confinement working: the node went off and,
        # while off, put nothing on the wire
        state = network.vehicle.can.node_state(self.fault.node)
        if state.bus_off_events == 0:
            return False
        victim = [d for d in network.vehicle.can.deliveries
                  if d.node == self.fault.node]
        return not any(off < d.completed_at < recovered
                       for off, recovered in state.bus_off_log
                       for d in victim)

    def recovered(self, network, report) -> bool:
        times = [d.completed_at for d in network.vehicle.can.deliveries
                 if d.node == self.fault.node]
        return _recovered_by(times, self.fault.end_us,
                             self.fault.recovery_deadline_us)


class GatewayOverload(FaultScenario):
    """The gateway's RX drain stalls while an intruder floods the bus."""

    def arm(self, network) -> None:
        fault = self.fault
        gateway_can = network.gateway_can
        gateway_can.irq_blackouts = ((fault.start_us, fault.end_us),)
        bus = network.vehicle.can
        scheduler = bus.scheduler

        def spam() -> None:
            if scheduler.now >= fault.end_us:
                return
            self.activations += 1
            bus.submit(
                CanFrame(fault.can_id, _SPOOF_WORD.to_bytes(4, "little")),
                node=INTRUDER_NODE, injected=True)
            scheduler.after(fault.period_us, spam)

        scheduler.at(fault.start_us, spam)
        # the stalled drain restarts at window end: one IRQ empties the
        # FIFO (the gateway ISR polls until RXSTAT reads 0)
        number, handler, priority = gateway_can.irq
        scheduler.at(fault.end_us,
                     lambda: network.gateway.raise_irq(
                         number, handler, at_us=fault.end_us,
                         priority=priority))


class LinSlotFault(FaultScenario):
    """A wedged ("stuck") or dead ("drop") LIN slave for a window."""

    def arm(self, network) -> None:
        fault = self.fault
        mode = "drop" if fault.kind == "lin-drop" else "stuck"
        lin = network.vehicle.lin

        def hook(frame_id: int, now_us: int):
            if (frame_id == fault.can_id
                    and fault.start_us <= now_us < fault.end_us):
                self.activations += 1
                return mode
            return None

        lin.slot_fault = hook

    def recovered(self, network, report) -> bool:
        times = [applied.at_us for applied in network.actuator_out.applied
                 if (applied.word >> 16) >= 1]
        return _recovered_by(times, self.fault.end_us,
                             self.fault.recovery_deadline_us)


class FirmwareSoftError(FaultScenario):
    """Bit flips in the gateway's live SRAM, mid co-simulation.

    Flips target the guest's checksum word, so corruption is guaranteed
    detectable (the report's mirrored checksum mismatches) while the
    forwarded command path stays clean - a contained, fail-silent upset.
    The flip lands at the guest's next WFI boundary at or after the
    event time (:meth:`~repro.vehicle.ecu.Ecu.advance_for_event`), the
    unique architectural point every engine tier reaches identically.
    """

    def __init__(self, fault: FaultSpec) -> None:
        super().__init__(fault)
        self.injector: SoftErrorInjector | None = None

    def arm(self, network) -> None:
        fault = self.fault
        ecu = network.gateway
        bus = ecu.machine.bus
        injector = SoftErrorInjector(DeterministicRng(fault.seed),
                                     rate_per_mcycle=0.0)

        def flip(rng) -> None:
            addr = firmware.GATEWAY_CHECKSUM_ADDR
            word = bus.read_raw(addr, 4) ^ (1 << rng.randint(0, 31))
            bus.device_at(addr).write_raw(addr, word.to_bytes(4, "little"))

        injector.add_target("gateway-checksum", flip, lambda: 32)
        self.injector = injector
        scheduler = network.vehicle.scheduler

        def fire() -> None:
            ecu.advance_for_event(scheduler.now)
            for _ in range(fault.flips):
                injector.inject_one(time=scheduler.now)
                self.activations += 1

        scheduler.at(fault.start_us, fire)


_SCENARIOS = {
    "babbling-idiot": BabblingIdiot,
    "bus-off-storm": BusOffStorm,
    "gateway-overload": GatewayOverload,
    "lin-drop": LinSlotFault,
    "lin-stuck": LinSlotFault,
    "soft-error": FirmwareSoftError,
}


def scenario_for(fault: FaultSpec) -> FaultScenario:
    """The armed-scenario object for a fault spec."""
    return _SCENARIOS[fault.kind](fault)
