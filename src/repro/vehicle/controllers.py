"""Memory-mapped network controllers and body-electronics devices.

These are the devices an ECU's guest firmware actually talks to over its
:class:`~repro.memory.bus.SystemBus` - word-register MMIO with side
effects, exactly like a real CAN cell or LIN transceiver block:

* :class:`CanController` - TX mailbox (identifier + data + doorbell) and
  a small RX FIFO fed by the shared :class:`~repro.network.can_bus.CanBus`,
  raising the ECU's VIC/NVIC interrupt on frame arrival;
* :class:`LinController` - a slave response buffer the LIN master's
  schedule table reads, plus an RX FIFO for frames addressed to this
  node (the actuator side);
* :class:`SensorDevice` - a latched sample register the orchestrator
  updates on the signal's period;
* :class:`ActuatorDevice` - an output register whose writes are logged
  with their bus-time timestamp (the end-to-end latency measurement
  point).

Causality discipline
--------------------
A guest core may run *ahead* of the bus clock inside its quantum, so
anything a bus-time event deposits into a device carries a
``visible_from`` cycle (the arrival bus time converted to this ECU's
cycles).  MMIO reads only expose state whose visibility cycle is at or
before the core's own cycle counter - a frame that arrives at bus time T
can never be observed by an instruction that architecturally executed
before T, no matter how the host interleaved the quanta.  This is what
makes whole-vehicle runs byte-identical across quantum sizes.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.memory.bus import BusFault
from repro.network.can_frame import CanFrame

#: default device addresses on every ECU's private bus
CAN_CONTROLLER_BASE = 0x4000_0000
LIN_CONTROLLER_BASE = 0x4001_0000
SENSOR_BASE = 0x4002_0000
ACTUATOR_BASE = 0x4003_0000


class MmioDevice:
    """Word-register device base: aligned 32-bit accesses, zero stalls."""

    #: stall bound advertised to the cycle-coupled engine's block caps
    worst_stall = 0

    def __init__(self, base: int, size: int = 0x40) -> None:
        self.base = base
        self.size = size

    def _offset(self, addr: int, size: int) -> int:
        offset = addr - self.base
        if size != 4 or offset & 3 or not 0 <= offset <= self.size - 4:
            raise BusFault(addr, "device registers are aligned words")
        return offset

    def read(self, addr: int, size: int, side: str = "D") -> tuple[int, int]:
        return self.read_register(self._offset(addr, size)) & 0xFFFFFFFF, 0

    def write(self, addr: int, size: int, value: int, side: str = "D") -> int:
        self.write_register(self._offset(addr, size), value & 0xFFFFFFFF)
        return 0

    # debug/loader access: registers read side-effect free
    def read_raw(self, addr: int, size: int) -> bytes:
        value, _ = self.read(addr, size)
        return value.to_bytes(4, "little")

    def write_raw(self, addr: int, payload: bytes) -> None:
        raise BusFault(addr, "cannot image-load device registers")

    def read_register(self, offset: int) -> int:
        raise BusFault(self.base + offset, "unimplemented register")

    def write_register(self, offset: int, value: int) -> None:
        raise BusFault(self.base + offset, "read-only register")


@dataclass
class RxEntry:
    """One received frame waiting in a controller FIFO."""

    ident: int
    word: int
    visible_from: int   # first guest cycle that may observe it


class _RxFifo:
    """Visibility-gated receive FIFO shared by the CAN and LIN cells."""

    def __init__(self, capacity: int = 8) -> None:
        self.capacity = capacity
        self.entries: deque[RxEntry] = deque()
        self.received = 0
        self.dropped = 0

    def push(self, ident: int, word: int, visible_from: int) -> None:
        self.received += 1
        if len(self.entries) >= self.capacity:
            self.dropped += 1
            return
        self.entries.append(RxEntry(ident, word, visible_from))

    def head(self, now_cycle: int) -> RxEntry | None:
        if self.entries and self.entries[0].visible_from <= now_cycle:
            return self.entries[0]
        return None

    def pop(self, now_cycle: int) -> None:
        if self.head(now_cycle) is not None:
            self.entries.popleft()


class CanController(MmioDevice):
    """TX mailbox + RX FIFO on the shared CAN bus.

    Register map (word offsets)::

        0x00  TXID    rw  identifier latch
        0x04  TXDATA  rw  payload word latch (4-byte frames)
        0x08  TXCTRL  w: any value queues the latched frame at the bus
                      time of this store; r: frames queued so far
        0x0C  RXID    r   head frame identifier (0 when empty/ahead)
        0x10  RXDATA  r   head frame payload word
        0x14  RXSTAT  r: 1 when a frame is observable; w: pop the head
        0x18  RXDROP  r   frames lost to FIFO overflow

    The doorbell submits at the exact bus microsecond of the store (the
    ECU's cycle counter converted back to bus time), so frame queueing
    times are a pure function of the guest's instruction stream.
    """

    def __init__(self, base: int = CAN_CONTROLLER_BASE,
                 capacity: int = 8) -> None:
        super().__init__(base)
        self.ecu = None             # bound by Ecu.attach_can
        self.can_bus = None
        self.node = "ecu"
        self.accept: frozenset[int] = frozenset()
        self.irq: tuple[int, int, int] | None = None  # (number, handler, prio)
        #: (start_us, end_us) windows in which the RX interrupt is NOT
        #: raised although frames still enter the FIFO - the fault
        #: layer's model of a starved/overloaded drain path.  Frames
        #: arriving faster than the FIFO holds are then dropped and
        #: counted, exactly as on a controller whose ISR is stalled.
        self.irq_blackouts: tuple = ()
        self.fifo = _RxFifo(capacity)
        self.tx_id = 0
        self.tx_data = 0
        self.frames_queued = 0
        self.frames_submitted = 0

    # ------------------------------------------------------------------
    def bind(self, ecu, can_bus, node: str, accept,
             irq: tuple[int, int, int] | None = None) -> None:
        self.ecu = ecu
        self.can_bus = can_bus
        self.node = node
        self.accept = frozenset(accept)
        self.irq = irq
        can_bus.subscribe(self._on_delivery)

    def read_register(self, offset: int) -> int:
        if offset == 0x00:
            return self.tx_id
        if offset == 0x04:
            return self.tx_data
        if offset == 0x08:
            return self.frames_queued
        now = self.ecu.cpu.cycles
        head = self.fifo.head(now)
        if offset == 0x0C:
            return head.ident if head is not None else 0
        if offset == 0x10:
            return head.word if head is not None else 0
        if offset == 0x14:
            return 1 if head is not None else 0
        if offset == 0x18:
            return self.fifo.dropped
        raise BusFault(self.base + offset, "unknown CAN register")

    def write_register(self, offset: int, value: int) -> None:
        if offset == 0x00:
            self.tx_id = value & 0x7FF
        elif offset == 0x04:
            self.tx_data = value
        elif offset == 0x08:
            self._doorbell()
        elif offset == 0x14:
            self.fifo.pop(self.ecu.cpu.cycles)
        else:
            raise BusFault(self.base + offset, "read-only CAN register")

    def _doorbell(self) -> None:
        frame = CanFrame(self.tx_id, self.tx_data.to_bytes(4, "little"))
        # The frame enters arbitration a fixed transmit-path delay after
        # the store's guest time - a pure function of the instruction
        # stream, so bus traffic cannot depend on where the host paused
        # the quantum.  The delay must exceed the quantum (the host clock
        # runs at most one quantum ahead of the guest's replayed time);
        # a violation is a configuration error, raised loudly.
        at_us = (self.ecu.us_of_cycle(self.ecu.cpu.cycles)
                 + self.ecu.tx_delay_us)
        self.frames_queued += 1
        scheduler = self.can_bus.scheduler
        if at_us < scheduler.now:
            from repro.vehicle.ecu import CosimDeterminismError

            raise CosimDeterminismError(
                f"{self.node}: CAN submit for guest time "
                f"{at_us - self.ecu.tx_delay_us}us (+{self.ecu.tx_delay_us}us "
                f"tx delay) is behind bus time {scheduler.now}us; "
                f"tx_delay_us must exceed the co-simulation quantum")

        def submit(frame=frame) -> None:
            self.frames_submitted += 1
            self.can_bus.submit(frame, node=self.node)

        # Inside a parallel TX window the scheduler heap is off-limits
        # (other ECUs are advancing concurrently): park the submission in
        # the ECU's buffer; the barrier drains buffers in ECU order, so
        # the scheduler sees the exact call sequence of a serial pump.
        window = self.ecu.tx_buffer
        if window is not None:
            window.append((at_us, submit))
        else:
            scheduler.at(at_us, submit)

    def _on_delivery(self, frame, record) -> None:
        if record.node == self.node or frame.can_id not in self.accept:
            return
        word = int.from_bytes(frame.data[:4].ljust(4, b"\x00"), "little")
        now_us = self.can_bus.scheduler.now
        visible = self.ecu.cycle_of_us(now_us) + self.ecu.irq_latency
        self.fifo.push(frame.can_id, word, visible)
        if self.irq is not None and not self._irq_suppressed(now_us):
            number, handler, priority = self.irq
            self.ecu.raise_irq(number, handler, at_us=now_us,
                               priority=priority)

    def _irq_suppressed(self, now_us: int) -> bool:
        return any(start <= now_us < end for start, end in self.irq_blackouts)


class LinController(MmioDevice):
    """LIN cell: a slave response buffer plus an RX FIFO.

    Register map (word offsets)::

        0x00  PUB     rw  response buffer the master's schedule reads
        0x04  RXID    r   head frame identifier
        0x08  RXDATA  r   head frame payload word
        0x0C  RXSTAT  r: 1 when a frame is observable; w: pop the head
        0x10  RXDROP  r   frames lost to FIFO overflow
    """

    def __init__(self, base: int = LIN_CONTROLLER_BASE,
                 capacity: int = 8) -> None:
        super().__init__(base)
        self.ecu = None
        self.accept: frozenset[int] = frozenset()
        self.irq: tuple[int, int, int] | None = None
        self.fifo = _RxFifo(capacity)
        self.pub = 0
        self.publishes = 0

    def bind(self, ecu, lin_master, accept,
             irq: tuple[int, int, int] | None = None) -> None:
        self.ecu = ecu
        self.lin = lin_master
        self.accept = frozenset(accept)
        self.irq = irq
        if accept:
            lin_master.subscribe(self._on_delivery)

    def respond(self) -> bytes:
        """The master's slave hook: the current response buffer bytes.

        The orchestrator wraps this in an on-demand advance of the owning
        ECU to the slot's bus time, so the buffer content is exactly what
        the guest had published by that instant.
        """
        return self.pub.to_bytes(4, "little")

    def read_register(self, offset: int) -> int:
        if offset == 0x00:
            return self.pub
        now = self.ecu.cpu.cycles
        head = self.fifo.head(now)
        if offset == 0x04:
            return head.ident if head is not None else 0
        if offset == 0x08:
            return head.word if head is not None else 0
        if offset == 0x0C:
            return 1 if head is not None else 0
        if offset == 0x10:
            return self.fifo.dropped
        raise BusFault(self.base + offset, "unknown LIN register")

    def write_register(self, offset: int, value: int) -> None:
        if offset == 0x00:
            self.pub = value
            self.publishes += 1
        elif offset == 0x0C:
            self.fifo.pop(self.ecu.cpu.cycles)
        else:
            raise BusFault(self.base + offset, "read-only LIN register")

    def _on_delivery(self, delivery) -> None:
        if delivery.frame_id not in self.accept:
            return
        word = int.from_bytes(delivery.data[:4].ljust(4, b"\x00"), "little")
        now_us = self.lin.scheduler.now
        visible = self.ecu.cycle_of_us(now_us) + self.ecu.irq_latency
        self.fifo.push(delivery.frame_id, word, visible)
        if self.irq is not None:
            number, handler, priority = self.irq
            self.ecu.raise_irq(number, handler, at_us=now_us,
                               priority=priority)


class SensorDevice(MmioDevice):
    """A latched sample register (offset 0x00), visibility-gated."""

    def __init__(self, base: int = SENSOR_BASE) -> None:
        super().__init__(base)
        self.ecu = None
        self.current = 0
        self.pending: deque[tuple[int, int]] = deque()  # (word, visible)
        self.samples = 0

    def latch(self, word: int, visible_from: int) -> None:
        self.samples += 1
        self.pending.append((word & 0xFFFFFFFF, visible_from))

    def read_register(self, offset: int) -> int:
        if offset != 0x00:
            raise BusFault(self.base + offset, "unknown sensor register")
        now = self.ecu.cpu.cycles
        while self.pending and self.pending[0][1] <= now:
            self.current = self.pending.popleft()[0]
        return self.current


@dataclass
class AppliedValue:
    """One actuator write: what the guest applied, and when (bus time)."""

    ident: int
    word: int
    at_us: int


class ActuatorDevice(MmioDevice):
    """Output register whose writes are timestamp-logged.

    Register map: ``0x00`` OUT (w: apply the latched identifier + this
    word; r: last applied word), ``0x04`` COUNT (r), ``0x08`` ID latch
    (rw) - firmware stores the source identifier first, then the value.
    """

    def __init__(self, base: int = ACTUATOR_BASE) -> None:
        super().__init__(base)
        self.ecu = None
        self.ident = 0
        self.last = 0
        self.applied: list[AppliedValue] = []

    def read_register(self, offset: int) -> int:
        if offset == 0x00:
            return self.last
        if offset == 0x04:
            return len(self.applied)
        if offset == 0x08:
            return self.ident
        raise BusFault(self.base + offset, "unknown actuator register")

    def write_register(self, offset: int, value: int) -> None:
        if offset == 0x00:
            self.last = value
            self.applied.append(AppliedValue(
                ident=self.ident, word=value,
                at_us=self.ecu.us_of_cycle(self.ecu.cpu.cycles)))
        elif offset == 0x08:
            self.ident = value
        else:
            raise BusFault(self.base + offset, "read-only actuator register")
