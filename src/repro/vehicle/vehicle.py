"""The virtual vehicle: cycle-coupled multi-ECU co-simulation.

This is the layer where everything the repository models finally executes
*together*: N real CPU-core models (ARM7 / Cortex-M3 / ARM1156, each
running real assembled firmware under the trace-superblock engine), the
discrete-event CAN bus, and the LIN sub-bus behind a gateway ECU, all on
one shared :class:`~repro.sim.events.EventScheduler` clock - the paper's
"distributed ECU network as a single compute resource" claim, run rather
than merely analysed.

Composition model
-----------------
* Every ECU is advanced in bounded quanta
  (:meth:`~repro.vehicle.ecu.Ecu.advance_to_us`): a pump event walks all
  ECUs up to the current bus time and re-arms itself one quantum later.
* Bus → CPU coupling is interrupt-shaped: a frame arriving at a node's
  CAN/LIN controller raises its VIC/NVIC line with an absolute assert
  cycle derived from the bus time (plus a fixed delivery latency), and
  the engine's event horizon delivers it cycle-exactly.
* CPU → bus coupling is doorbell-shaped: an MMIO store queues a frame at
  the store's guest time plus a fixed transmit delay.
* The LIN master's schedule table reads a slave's response buffer with an
  on-demand advance of the publishing ECU to the slot's bus time, so the
  response is exactly what the guest had published by that instant.

All cross-domain timestamps are pure functions of bus times and guest
instruction streams - never of quantum placement - which makes whole
runs byte-identical across quantum sizes (property-tested).

Parallel execution: the lookahead/merge contract
------------------------------------------------
``run(..., parallel=N)`` executes every ECU's quantum concurrently on a
worker pool, byte-identically to the serial pump.  The scheme is a
conservative parallel discrete-event simulation whose lookahead is the
*declared* cross-ECU latency floor:

* **Lookahead.** The only ways one ECU affects another are bus
  deliveries (which assert IRQs ``irq_latency_cycles`` after the bus
  time) and doorbell transmissions (which enter arbitration
  ``tx_delay_us`` after the store's guest time).  Both delays are fixed,
  declared per ECU, and already enforced at runtime by
  :class:`~repro.vehicle.ecu.CosimDeterminismError` guards.  A quantum
  no wider than ``min(ecu.tx_delay_us)`` therefore cannot carry a
  within-window cross-ECU effect: every effect lands at a strictly
  later bus event, after the barrier.  ``run`` validates this
  precondition eagerly.
* **Window.** At each pump the main thread opens a TX window per ECU
  (:meth:`~repro.vehicle.ecu.Ecu.begin_tx_window`), dispatches every
  ``advance_to_us(now)`` to the pool, and joins.  During the window a
  guest advance mutates only its own machine; the scheduler heap - the
  single piece of shared state a doorbell would touch - is off-limits,
  with submissions parked in the ECU's buffer instead.
* **Merge.** At the barrier the main thread drains the buffers in the
  vehicle's fixed ECU order (each in its own program order), replaying
  the exact ``scheduler.at`` call sequence of the serial pump.  Event
  sequence numbers, and with them every same-timestamp tie-break, are
  identical - so records, traces, and golden fingerprints are
  byte-identical for every worker count (property-tested and
  ``cmp``-checked in CI, like quantum sizes and shards).

The quantum edge itself is sound because the per-block cycle caps that
bound speculative superblock execution are built from *declared* device
timing: every memory device states its worst per-access stall
(``worst_stall`` - see :class:`repro.memory.bus.MemoryDevice`), the bus
aggregates the declarations, and each core folds in its declared worst
dynamic instruction cost (``WORST_DYNAMIC_CYCLES``) - no heuristic
slack anywhere in the bound (:meth:`repro.core.cpu.BaseCpu.
_block_cycle_cap`).

:func:`build_body_network` assembles the canonical three-ECU topology
(sensor ECUs -> CAN -> gateway ECU -> LIN -> window-lift actuator ECU)
and cross-checks every observed end-to-end signal latency against the
composed analytic bound: per-ECU response-time analysis
(:mod:`repro.rtos.analysis`, over measured handler WCETs) chained with
the Tindell/Davis CAN bound (:mod:`repro.network.can_analysis`) and the
LIN schedule-table bound.  :func:`build_round_trip` is the minimal
two-ECU CAN request/response network the conformance corpus pins.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from time import perf_counter

from repro import obs
from repro.core.arm1156 import Arm1156Core
from repro.core.machines import (
    DEFAULT_FLASH_SIZE,
    DEFAULT_SRAM_SIZE,
    FLASH_BASE,
    Machine,
    build_arm7,
    build_cortexm3,
)
from repro.core.vic import VicController
from repro.isa import ISA_THUMB, ISA_THUMB2, assemble
from repro.memory.bus import SystemBus
from repro.memory.cache import Cache
from repro.memory.flash import Flash
from repro.memory.sram import Sram
from repro.network.can_analysis import MessageSpec, can_response_times
from repro.network.can_bus import CanBus
from repro.network.lin import LinMaster, ScheduleSlot, frame_bits
from repro.rtos.analysis import AnalysedTask, response_time_analysis
from repro.sim.events import EventScheduler
from repro.vehicle import firmware
from repro.vehicle.controllers import (
    ActuatorDevice,
    CanController,
    LinController,
    SensorDevice,
)
from repro.vehicle.ecu import Ecu

MASK16 = 0xFFFF

#: cycles added on top of a measured handler body for exception entry,
#: exit, and pipeline effects on any of the three cores (M3 hardware
#: stacking is 12 + unstacking 12; the VIC cores 5 + return)
ENTRY_EXIT_ALLOWANCE = 64

#: measured-WCET safety margin (certification-style padding)
WCET_MARGIN = 0.5

_COSIM_WINDOWS = obs.counter(
    "cosim.windows",
    "Barrier-synchronized parallel co-simulation windows executed")
_BARRIER_WAIT = obs.histogram(
    "cosim.window.barrier_wait_seconds",
    "Per window, total worker idle time at the merge barrier: "
    "sum over ECUs of (slowest ECU's busy time - this ECU's busy time)",
    buckets=obs.FAST_SECONDS_BUCKETS)
_PARALLEL_EFFICIENCY = obs.gauge(
    "cosim.parallel_efficiency",
    "Cumulative ECU busy seconds / (workers x window wall seconds) for "
    "this run: 1.0 is perfect scaling, 1/workers is serial")


def guest_isa(core: str) -> str:
    """The ISA each guest core runs (the harmonized Thumb subset)."""
    return ISA_THUMB if core == "arm7" else ISA_THUMB2


def build_guest_machine(core: str, source: str,
                        flash_access_cycles: int | None = None) -> Machine:
    """Assemble firmware and build the matching MCU for one ECU node.

    The ARM1156 variant runs with its instruction cache but *no data
    cache*: the data side carries the memory-mapped network controllers,
    and a read-allocating cache in front of volatile device registers
    would serve stale mailbox state - the standard automotive MPU setup
    maps peripheral space device-type (uncached), which a missing dcache
    models exactly.
    """
    program = assemble(source, guest_isa(core), base=FLASH_BASE)
    if core == "arm7":
        return build_arm7(program)
    if core in ("m3", "cortex-m3"):
        return build_cortexm3(program)
    if core != "arm1156":
        raise ValueError(f"unknown guest core {core!r}")
    bus = SystemBus()
    flash = Flash(base=FLASH_BASE, size=DEFAULT_FLASH_SIZE,
                  access_cycles=1 if flash_access_cycles is None
                  else flash_access_cycles,
                  line_bytes=32, prefetch=True)
    from repro.core.machines import SRAM_BASE

    sram = Sram(base=SRAM_BASE, size=DEFAULT_SRAM_SIZE, wait_states=1)
    bus.attach(flash)
    bus.attach(sram)
    bus.load_image(program.base, program.image())
    icache = Cache(bus, sets=64, ways=4, line_bytes=32, fault_tolerant=True)
    cpu = Arm1156Core(program, bus, icache=icache, dcache=None,
                      vic=VicController())
    machine = Machine(cpu=cpu, bus=bus, flash=flash, sram=sram, icache=icache)
    machine.reset_stack()
    return machine


# ----------------------------------------------------------------------
# the orchestrator
# ----------------------------------------------------------------------

class VirtualVehicle:
    """ECUs + CAN + LIN on one deterministic discrete-event clock."""

    def __init__(self, can_bitrate: int = 125_000) -> None:
        self.scheduler = EventScheduler()
        self.can = CanBus(scheduler=self.scheduler, bitrate_bps=can_bitrate)
        self.lin: LinMaster | None = None
        self.ecus: list[Ecu] = []
        self.horizon_us = 0

    def add_ecu(self, ecu: Ecu) -> Ecu:
        self.ecus.append(ecu)
        return ecu

    def add_lin(self, schedule: list[ScheduleSlot],
                baud: int = 19_200) -> LinMaster:
        self.lin = LinMaster(schedule, baud=baud, scheduler=self.scheduler)
        return self.lin

    def attach_lin_publisher(self, ecu: Ecu, controller: LinController,
                             frame_id: int) -> None:
        """Wire a node's LIN response buffer into the master's schedule.

        The responder advances the publishing ECU to the slot's bus time
        first, so the buffer content is bit-exactly the guest's state at
        that instant regardless of quantum placement.
        """

        def responder() -> bytes:
            ecu.advance_to_us(self.scheduler.now)
            return controller.respond()

        self.lin.attach_slave(frame_id, responder)

    def every(self, period_us: int, callback, offset_us: int = 0,
              priority: int = 0) -> None:
        """Schedule ``callback`` periodically (offset, offset+period, ...)."""

        def fire() -> None:
            callback()
            self.scheduler.after(period_us, fire, priority=priority)

        self.scheduler.at(self.scheduler.now + offset_us, fire,
                          priority=priority)

    def run(self, horizon_us: int, quantum_us: int = 200,
            parallel: int | None = None) -> None:
        """Advance the whole network deterministically to the horizon.

        With ``parallel=N`` (N >= 2), each pump dispatches every ECU's
        quantum to a worker pool and merges the buffered bus traffic at
        the barrier - byte-identical to the serial run (see the module
        docstring's lookahead/merge contract).  The quantum must fit
        under the declared TX lookahead (``min(ecu.tx_delay_us)``); a
        wider window could outrun a cross-ECU effect and is rejected
        eagerly instead of failing deep inside a campaign.
        """
        if quantum_us <= 0:
            raise ValueError("quantum_us must be positive")
        workers = 0
        if parallel is not None and int(parallel) >= 2 and len(self.ecus) >= 2:
            workers = min(int(parallel), len(self.ecus))
            lookahead = min(ecu.tx_delay_us for ecu in self.ecus)
            if quantum_us > lookahead:
                raise ValueError(
                    f"parallel co-simulation needs quantum_us "
                    f"({quantum_us}) <= the declared TX lookahead "
                    f"({lookahead}us, min over ecu.tx_delay_us): a "
                    f"window may not outrun the earliest cross-ECU "
                    f"effect")
        self.horizon_us = horizon_us
        scheduler = self.scheduler
        pool = None
        if workers:
            from concurrent.futures import ThreadPoolExecutor

            pool = ThreadPoolExecutor(max_workers=workers)

        # telemetry accumulators for this run (out-of-band: the merge
        # order and every simulated outcome are identical without them)
        cosim_busy = 0.0
        cosim_wall = 0.0

        def timed_advance(ecu, now: int) -> float:
            t0 = perf_counter()
            ecu.advance_to_us(now)
            return perf_counter() - t0

        def advance_all(now: int) -> None:
            nonlocal cosim_busy, cosim_wall
            if pool is None:
                for ecu in self.ecus:
                    ecu.advance_to_us(now)
                return
            observing = obs.REGISTRY.enabled
            # one barrier-synchronized window: every ECU advances on a
            # worker with its TX buffered, then the main thread merges
            # buffers in ECU order - the scheduler sees the serial
            # pump's exact call sequence (see the module docstring)
            for ecu in self.ecus:
                ecu.begin_tx_window()
            try:
                if not observing:
                    futures = [pool.submit(ecu.advance_to_us, now)
                               for ecu in self.ecus]
                    # collect every outcome before touching shared state:
                    # no worker may still be running when buffers drain
                    errors = [exc for exc in (f.exception() for f in futures)
                              if exc is not None]
                else:
                    start = perf_counter()
                    futures = [pool.submit(timed_advance, ecu, now)
                               for ecu in self.ecus]
                    errors, busy = [], []
                    for future in futures:
                        exc = future.exception()
                        if exc is not None:
                            errors.append(exc)
                        else:
                            busy.append(future.result())
                    wall = perf_counter() - start
                    _COSIM_WINDOWS.add()
                    if busy:
                        slowest = max(busy)
                        _BARRIER_WAIT.observe(
                            sum(slowest - b for b in busy))
                    cosim_busy += sum(busy)
                    cosim_wall += wall
                    if cosim_wall > 0.0:
                        _PARALLEL_EFFICIENCY.set(
                            round(cosim_busy / (workers * cosim_wall), 4))
            finally:
                for ecu in self.ecus:
                    ecu.end_tx_window(scheduler)
            if errors:
                raise errors[0]

        def pump() -> None:
            now = scheduler.now
            advance_all(now)
            if now < horizon_us:
                scheduler.at(min(now + quantum_us, horizon_us), pump,
                             priority=9)

        # priority 9: at any shared timestamp, bus events (deliveries,
        # LIN slots) run first - ECU advancement is order-independent
        # anyway, but keeping one canonical order aids debugging
        try:
            scheduler.at(min(quantum_us, horizon_us), pump, priority=9)
            if self.lin is not None:
                self.lin.start(offset_us=0)
            scheduler.run(until=horizon_us)
            advance_all(horizon_us)
        finally:
            if pool is not None:
                pool.shutdown(wait=True)

    # ------------------------------------------------------------------
    def frame_conservation(self) -> dict:
        """CAN frame accounting across controllers, scheduler, and wire.

        Exactly-once under faults too: frames injected by the fault layer
        (no controller TX path) and frames parked behind a bus-off node
        are both in the ledger, and injected-error accounting must be
        coherent (every error frame attributed to exactly one message).
        """
        queued = submitted = 0
        for ecu in self.ecus:
            for device in ecu.devices:
                if isinstance(device, CanController):
                    queued += device.frames_queued
                    submitted += device.frames_submitted
        delivered = len(self.can.deliveries)
        in_tx_path = queued - submitted
        sourced = queued + self.can.frames_injected
        errors = self.can.error_accounting()
        return {
            "queued": queued,
            "injected": self.can.frames_injected,
            "delivered": delivered,
            "backlog": self.can.backlog + in_tx_path,
            "errors_injected": errors["errors_injected"],
            "conserved": (sourced == delivered + self.can.backlog + in_tx_path
                          and errors["coherent"]),
        }


# ----------------------------------------------------------------------
# the canonical body network: sensors -> CAN -> gateway -> LIN -> actuator
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class SensorNode:
    """One sensor ECU publishing a periodic CAN signal."""

    name: str
    core: str            # 'arm7' | 'm3' | 'arm1156'
    mhz: int
    can_id: int
    period_us: int
    offset_us: int = 1_000
    raw_salt: int = 0    # parameterizes the deterministic sample sequence


@dataclass(frozen=True)
class BodyNetworkSpec:
    """Pure-data description of a whole body network (campaign-cell safe)."""

    sensors: tuple[SensorNode, ...]
    gateway_core: str = "m3"
    gateway_mhz: int = 80
    actuator_core: str = "arm7"
    actuator_mhz: int = 24
    forward_index: int = 0          # which sensor's signal rides to LIN
    lin_frame_id: int = 0x21
    lin_baud: int = 19_200
    lin_slot_us: int = 10_000
    can_bitrate: int = 125_000
    quantum_us: int = 200
    irq_latency_cycles: int = 256
    tx_delay_us: int = 500


@dataclass
class GeneratedSample:
    seq: int
    raw: int
    at_us: int


@dataclass
class SignalObservation:
    """One observed hop of a signal instance (gateway tap or actuator)."""

    signal: str
    seq: int
    latency_us: int
    bound_us: int
    value_ok: bool

    @property
    def within_bound(self) -> bool:
        return self.latency_us <= self.bound_us


@dataclass
class BodyNetworkReport:
    """Everything a campaign record (or a test) wants to know."""

    observations: list[SignalObservation] = field(default_factory=list)
    generated: int = 0
    gateway_applied: int = 0
    actuator_applied: int = 0
    bound_violations: int = 0
    value_errors: int = 0
    conservation_ok: bool = True
    checksum_ok: bool = True
    worst_latency_us: int = 0
    worst_bound_us: int = 0
    lin_deliveries: int = 0
    lin_no_response: int = 0

    @property
    def healthy(self) -> bool:
        return (self.gateway_applied > 0 and self.actuator_applied > 0
                and self.bound_violations == 0 and self.value_errors == 0
                and self.conservation_ok and self.checksum_ok)


def sample_raw(salt: int, seq: int) -> int:
    """The deterministic sensor sample sequence (10-bit ADC-ish)."""
    return ((seq * 2654435761 + salt * 97) >> 7) & 0x3FF


class BodyNetwork:
    """A built three-ECU body network plus its measurement machinery."""

    def __init__(self, spec: BodyNetworkSpec) -> None:
        if not spec.sensors:
            raise ValueError("a body network needs at least one sensor ECU")
        if not 0 <= spec.forward_index < len(spec.sensors):
            raise ValueError("forward_index out of range")
        self.spec = spec
        self.vehicle = VirtualVehicle(can_bitrate=spec.can_bitrate)
        self.generated: dict[str, list[GeneratedSample]] = {}

        forward = spec.sensors[spec.forward_index]
        self.forward_id = forward.can_id
        lat = spec.irq_latency_cycles
        txd = spec.tx_delay_us

        # -- sensor ECUs -------------------------------------------------
        self.sensor_ecus: list[Ecu] = []
        self.sensor_devices: list[SensorDevice] = []
        for node in spec.sensors:
            machine = build_guest_machine(node.core,
                                          firmware.sensor_source(node.can_id))
            ecu = Ecu(node.name, machine, clock_mhz=node.mhz,
                      irq_latency_cycles=lat, tx_delay_us=txd)
            sensor = SensorDevice()
            can_cell = CanController()
            ecu.attach_device(sensor)
            ecu.attach_device(can_cell)
            can_cell.bind(ecu, self.vehicle.can, node=node.name, accept=())
            self.vehicle.add_ecu(ecu)
            self.sensor_ecus.append(ecu)
            self.sensor_devices.append(sensor)
            self.generated[node.name] = []

        # -- gateway ECU -------------------------------------------------
        machine = build_guest_machine(
            spec.gateway_core, firmware.gateway_source(self.forward_id))
        self.gateway = Ecu("gateway", machine, clock_mhz=spec.gateway_mhz,
                           irq_latency_cycles=lat, tx_delay_us=txd)
        self.gateway_can = CanController()
        self.gateway_lin = LinController()
        self.gateway_tap = ActuatorDevice()
        self.gateway.attach_device(self.gateway_can)
        self.gateway.attach_device(self.gateway_lin)
        self.gateway.attach_device(self.gateway_tap)
        handlers = machine.cpu.program.symbols
        self.gateway_can.bind(
            self.gateway, self.vehicle.can, node="gateway",
            accept=[n.can_id for n in spec.sensors],
            irq=(2, handlers["can_rx_isr"], 1))
        self.vehicle.add_ecu(self.gateway)

        # -- LIN leg -----------------------------------------------------
        slot_us = max(spec.lin_slot_us,
                      -(-frame_bits(4) * 1_000_000 // spec.lin_baud) + 100)
        self.vehicle.add_lin([ScheduleSlot(spec.lin_frame_id, 4, slot_us)],
                             baud=spec.lin_baud)
        self.gateway_lin.bind(self.gateway, self.vehicle.lin, accept=())
        self.vehicle.attach_lin_publisher(self.gateway, self.gateway_lin,
                                          spec.lin_frame_id)

        # -- actuator ECU ------------------------------------------------
        machine = build_guest_machine(spec.actuator_core,
                                      firmware.actuator_source())
        self.actuator = Ecu("actuator", machine, clock_mhz=spec.actuator_mhz,
                            irq_latency_cycles=lat, tx_delay_us=txd)
        self.actuator_lin = LinController()
        self.actuator_out = ActuatorDevice()
        self.actuator.attach_device(self.actuator_lin)
        self.actuator.attach_device(self.actuator_out)
        handlers = machine.cpu.program.symbols
        self.actuator_lin.bind(self.actuator, self.vehicle.lin,
                               accept=[spec.lin_frame_id],
                               irq=(3, handlers["lin_rx_isr"], 1))
        self.vehicle.add_ecu(self.actuator)

        self._arm_samplers()

    # ------------------------------------------------------------------
    def _arm_samplers(self) -> None:
        for node, ecu, device in zip(self.spec.sensors, self.sensor_ecus,
                                     self.sensor_devices):
            handler = ecu.cpu.program.symbols["timer_isr"]

            def sample(node=node, ecu=ecu, device=device,
                       handler=handler) -> None:
                log = self.generated[node.name]
                seq = len(log) + 1
                raw = sample_raw(node.raw_salt, seq)
                now = self.vehicle.scheduler.now
                word = ((seq & MASK16) << 16) | raw
                device.latch(word, visible_from=ecu.cycle_of_us(now))
                ecu.raise_irq(1, handler, at_us=now, priority=0)
                log.append(GeneratedSample(seq=seq, raw=raw, at_us=now))

            self.vehicle.every(node.period_us, sample,
                               offset_us=node.offset_us)

    def run(self, horizon_us: int, quantum_us: int | None = None,
            parallel: int | None = None) -> None:
        self.vehicle.run(horizon_us,
                         quantum_us=quantum_us or self.spec.quantum_us,
                         parallel=parallel)

    # ------------------------------------------------------------------
    # analytic bounds (calibration twin + RTA + CAN + LIN composition)
    # ------------------------------------------------------------------
    def analytic_bounds(self) -> dict[str, dict]:
        """Per-signal end-to-end bounds composed from the layer analyses.

        Handler WCETs are measured on a *calibration twin* of this very
        network (measurement-based timing analysis, padded by
        ``WCET_MARGIN`` like :mod:`repro.rtos.wcet`), per-ECU responses
        come from :func:`~repro.rtos.analysis.response_time_analysis`,
        the CAN leg from :func:`~repro.network.can_analysis.
        can_response_times` (sensor-side processing folded in as release
        jitter), and the LIN leg from the schedule-table worst case.
        """
        spec = self.spec
        twin = BodyNetwork(spec)
        lat = spec.irq_latency_cycles

        def leg_us(ecu: Ecu, response_cycles: int) -> int:
            return -(-(lat + 1 + response_cycles) // ecu.mhz) + 1

        # sensor legs: sample event -> frame queued at the bus
        sensor_leg = {}
        for node, ecu, twin_ecu, twin_dev in zip(
                spec.sensors, self.sensor_ecus, twin.sensor_ecus,
                twin.sensor_devices):
            worst = 0
            for raw in (0, 0x3FF):
                twin_dev.latch(((1 & MASK16) << 16) | raw, visible_from=0)
                before = twin_ecu.cpu.cycles
                twin_ecu.machine.call("timer_isr")
                worst = max(worst, twin_ecu.cpu.cycles - before)
            wcet = int(math.ceil(worst * (1 + WCET_MARGIN)))
            task = AnalysedTask(name="timer_isr",
                                wcet=wcet + ENTRY_EXIT_ALLOWANCE,
                                period=node.period_us * ecu.mhz)
            response = response_time_analysis([task]).response_of(
                "timer_isr").response
            sensor_leg[node.name] = (leg_us(ecu, response)
                                     + spec.tx_delay_us + 1)

        # CAN leg: queued -> delivered, with sensor legs as release jitter
        streams = [
            MessageSpec(can_id=node.can_id, payload_bytes=4,
                        period_us=node.period_us,
                        jitter_us=sensor_leg[node.name])
            for node in spec.sensors
        ]
        analysis = can_response_times(streams, bitrate_bps=spec.can_bitrate)

        # gateway leg: delivery -> tap/publish (worst of both ISR paths)
        worst = 0
        for ident in (self.forward_id,
                      *(n.can_id for n in spec.sensors
                        if n.can_id != self.forward_id)):
            twin.gateway_can.fifo.push(ident, (1 << 16) | 0x123,
                                       visible_from=0)
            before = twin.gateway.cpu.cycles
            twin.gateway.machine.call("can_rx_isr")
            worst = max(worst, twin.gateway.cpu.cycles - before)
        wcet = int(math.ceil(worst * (1 + WCET_MARGIN)))
        min_period = min(n.period_us for n in spec.sensors)
        task = AnalysedTask(name="can_rx_isr",
                            wcet=wcet + ENTRY_EXIT_ALLOWANCE,
                            period=min_period * self.gateway.mhz)
        response = response_time_analysis([task]).response_of(
            "can_rx_isr").response
        gateway_leg = leg_us(self.gateway, response)

        # LIN leg: publish -> frame completion at the slave
        lin_leg = self.vehicle.lin.worst_case_latency_us(spec.lin_frame_id)

        # actuator leg: frame completion -> actuator register write
        twin.actuator_lin.fifo.push(spec.lin_frame_id, (1 << 16) | 0x123,
                                    visible_from=0)
        before = twin.actuator.cpu.cycles
        twin.actuator.machine.call("lin_rx_isr")
        wcet = int(math.ceil((twin.actuator.cpu.cycles - before)
                             * (1 + WCET_MARGIN)))
        task = AnalysedTask(name="lin_rx_isr",
                            wcet=wcet + ENTRY_EXIT_ALLOWANCE,
                            period=self.vehicle.lin.cycle_us
                            * self.actuator.mhz)
        response = response_time_analysis([task]).response_of(
            "lin_rx_isr").response
        actuator_leg = leg_us(self.actuator, response)

        bounds = {}
        for node in spec.sensors:
            can_bound = analysis.response_of(node.can_id).response_us
            if can_bound is None:
                raise ValueError(
                    f"CAN analysis did not converge for id {node.can_id:#x}; "
                    f"the synthesized matrix overloads the bus")
            to_gateway = can_bound + 1 + gateway_leg
            entry = {
                "can_analysis_us": can_bound,
                "to_gateway_us": to_gateway,
                "schedulable": analysis.schedulable,
            }
            if node.can_id == self.forward_id:
                entry["end_to_end_us"] = to_gateway + lin_leg + actuator_leg
            bounds[node.name] = entry
        return bounds

    # ------------------------------------------------------------------
    # observation / verification
    # ------------------------------------------------------------------
    def expected_word(self, node: SensorNode, seq: int,
                      transformed: bool) -> int:
        value = firmware.sensor_filter(sample_raw(node.raw_salt, seq))
        if transformed:
            value = firmware.gateway_transform(value)
        return ((seq & MASK16) << 16) | value

    def report(self) -> BodyNetworkReport:
        spec = self.spec
        bounds = self.analytic_bounds()
        by_id = {node.can_id: node for node in spec.sensors}
        report = BodyNetworkReport()
        report.generated = sum(len(log) for log in self.generated.values())
        report.lin_deliveries = len(self.vehicle.lin.deliveries)
        report.lin_no_response = self.vehicle.lin.no_response
        conservation = self.vehicle.frame_conservation()
        report.conservation_ok = conservation["conserved"]

        def observe(signal: str, seq: int, at_us: int, t0_us: int,
                    bound_us: int, ok: bool) -> None:
            obs = SignalObservation(signal=signal, seq=seq,
                                    latency_us=at_us - t0_us,
                                    bound_us=bound_us, value_ok=ok)
            report.observations.append(obs)
            report.worst_latency_us = max(report.worst_latency_us,
                                          obs.latency_us)
            report.worst_bound_us = max(report.worst_bound_us, bound_us)
            if not obs.within_bound:
                report.bound_violations += 1
            if not ok:
                report.value_errors += 1

        # gateway taps: one per received frame, in processing order
        seen_gateway: dict[str, int] = {name: 0 for name in self.generated}
        for applied in self.gateway_tap.applied:
            node = by_id.get(applied.ident)
            if node is None:
                report.value_errors += 1
                continue
            seq = applied.word >> 16
            log = self.generated[node.name]
            if not 1 <= seq <= len(log):
                report.value_errors += 1
                continue
            # per-signal order: seqs arrive strictly ascending
            if seq != seen_gateway[node.name] + 1:
                report.conservation_ok = False
            seen_gateway[node.name] = seq
            expected = self.expected_word(
                node, seq, transformed=applied.ident == self.forward_id)
            observe(node.name, seq, applied.at_us, log[seq - 1].at_us,
                    bounds[node.name]["to_gateway_us"],
                    applied.word == expected)
            report.gateway_applied += 1

        # actuator applications: duplicates legal (the LIN schedule
        # re-broadcasts the current command); latency on first sight
        forward_node = spec.sensors[spec.forward_index]
        last_seq = 0
        for applied in self.actuator_out.applied:
            seq = applied.word >> 16
            if applied.ident != spec.lin_frame_id:
                report.value_errors += 1
                continue
            if seq == 0:
                continue  # no command published yet: the reset buffer
            log = self.generated[forward_node.name]
            if not 1 <= seq <= len(log) or seq < last_seq:
                report.conservation_ok = False
                continue
            first_sight = seq > last_seq
            last_seq = max(last_seq, seq)
            if not first_sight:
                continue
            expected = self.expected_word(forward_node, seq, transformed=True)
            observe(f"{forward_node.name}->lin", seq, applied.at_us,
                    log[seq - 1].at_us,
                    bounds[forward_node.name]["end_to_end_us"],
                    applied.word == expected)
            report.actuator_applied += 1

        # every generated sample except a bounded in-flight tail made it
        for node in spec.sensors:
            log = self.generated[node.name]
            tail = (bounds[node.name]["to_gateway_us"]
                    // node.period_us) + 2
            if seen_gateway[node.name] < len(log) - tail:
                report.conservation_ok = False

        # gateway checksum: fold the non-forwarded taps exactly as the
        # guest did and compare against its SRAM word
        checksum = 0
        for applied in self.gateway_tap.applied:
            if applied.ident != self.forward_id:
                checksum = firmware.gateway_checksum(checksum, applied.word)
        observed = self.gateway.machine.bus.read_raw(
            firmware.GATEWAY_CHECKSUM_ADDR, 4)
        report.checksum_ok = checksum == observed
        return report


def build_body_network(spec: BodyNetworkSpec) -> BodyNetwork:
    """Compose the canonical sensor -> gateway -> actuator vehicle."""
    return BodyNetwork(spec)


# ----------------------------------------------------------------------
# the minimal two-ECU round trip (conformance-corpus shape)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class RoundTripSpec:
    """Two ECUs ping-ponging over CAN: requester timer -> responder."""

    requester_core: str = "m3"
    requester_mhz: int = 80
    responder_core: str = "arm7"
    responder_mhz: int = 48
    request_id: int = 0x100
    response_id: int = 0x101
    period_us: int = 5_000
    offset_us: int = 1_000
    can_bitrate: int = 250_000
    quantum_us: int = 100
    irq_latency_cycles: int = 256
    tx_delay_us: int = 500


class RoundTrip:
    """A built round-trip network (golden-corpus and property-test rig)."""

    def __init__(self, spec: RoundTripSpec) -> None:
        self.spec = spec
        self.vehicle = VirtualVehicle(can_bitrate=spec.can_bitrate)

        machine = build_guest_machine(
            spec.requester_core, firmware.requester_source(spec.request_id))
        self.requester = Ecu("requester", machine,
                             clock_mhz=spec.requester_mhz,
                             irq_latency_cycles=spec.irq_latency_cycles,
                             tx_delay_us=spec.tx_delay_us)
        self.requester_can = CanController()
        self.requester.attach_device(self.requester_can)
        symbols = machine.cpu.program.symbols
        self.requester_can.bind(self.requester, self.vehicle.can,
                                node="requester",
                                accept=[spec.response_id],
                                irq=(2, symbols["can_rx_isr"], 1))
        self._timer_handler = symbols["timer_isr"]
        self.vehicle.add_ecu(self.requester)

        machine = build_guest_machine(
            spec.responder_core, firmware.responder_source(spec.response_id))
        self.responder = Ecu("responder", machine,
                             clock_mhz=spec.responder_mhz,
                             irq_latency_cycles=spec.irq_latency_cycles,
                             tx_delay_us=spec.tx_delay_us)
        self.responder_can = CanController()
        self.responder.attach_device(self.responder_can)
        symbols = machine.cpu.program.symbols
        self.responder_can.bind(self.responder, self.vehicle.can,
                                node="responder",
                                accept=[spec.request_id],
                                irq=(2, symbols["can_rx_isr"], 1))
        self.vehicle.add_ecu(self.responder)

        self.vehicle.every(
            spec.period_us,
            lambda: self.requester.raise_irq(
                1, self._timer_handler, at_us=self.vehicle.scheduler.now),
            offset_us=spec.offset_us)

    def run(self, horizon_us: int, quantum_us: int | None = None,
            parallel: int | None = None) -> None:
        self.vehicle.run(horizon_us,
                         quantum_us=quantum_us or self.spec.quantum_us,
                         parallel=parallel)

    # ------------------------------------------------------------------
    def expected_state(self) -> tuple[int, int, int]:
        """(requests, responses, accumulator) mirrored in pure Python."""
        requests = self.requester_can.frames_queued
        responses = [d for d in self.vehicle.can.deliveries
                     if d.can_id == self.spec.response_id]
        acc = 0
        count = self.requester.machine.bus.read_raw(
            firmware.ROUNDTRIP_ACC_ADDR + 4, 4)
        for seq in range(1, count + 1):
            acc = firmware.requester_accumulate(acc, seq + 1)
        return requests, len(responses), acc

    def fingerprint(self) -> dict:
        """Registers + bus stats + frame log: the golden-corpus payload.

        Deliberately excludes host-side artifacts (scheduler event
        counts, fused-block tallies) that vary with quantum size: what is
        pinned is exactly the architectural and wire-level state.
        """
        out = {"frames": [
            {"id": d.can_id, "node": d.node, "queued": d.queued_at,
             "completed": d.completed_at, "attempts": d.attempts}
            for d in self.vehicle.can.deliveries
        ]}
        for ecu in (self.requester, self.responder):
            cpu = ecu.cpu
            machine = ecu.machine
            out[ecu.name] = {
                "regs": list(cpu.regs.snapshot()),
                "apsr": str(cpu.apsr),
                "cycles": cpu.cycles,
                "instructions": cpu.instructions_executed,
                "irqs": ecu.controller.stats.serviced,
                "bus_reads": machine.bus.reads,
                "bus_writes": machine.bus.writes,
                "bus_stalls": machine.bus.total_stalls,
                "sram": bytes(machine.sram.data[:0x40]).hex(),
            }
        return out


def build_round_trip(spec: RoundTripSpec | None = None) -> RoundTrip:
    return RoundTrip(spec or RoundTripSpec())
