"""The ECU wrapper: one real CPU core advanced in bounded time quanta.

An :class:`Ecu` owns a complete simulated MCU (core + flash + SRAM +
memory-mapped network controllers), runs real assembled firmware, and is
advanced by the :class:`~repro.vehicle.vehicle.VirtualVehicle` clock in
*quanta*: ``advance_to_us(T)`` runs the guest - under whatever execution
engine tier the core is configured for, the trace-superblock engine by
default - until its cycle counter reaches ``T`` on its own clock.

Determinism contract
--------------------
The co-simulation is byte-identical across quantum sizes because nothing
about a quantum boundary is architecturally observable:

* :meth:`~repro.core.cpu.BaseCpu.run_until_cycle` stops at the first
  instruction boundary at or past the target, so any sequence of targets
  executes the same instruction stream;
* interrupts raised by bus events carry an *absolute* assert cycle
  derived from the bus time plus a fixed delivery latency
  (``irq_latency_cycles``), never from where the host happened to pause
  the core - the engine's event horizon then delivers them cycle-exactly;
* device state deposited at bus time T is visibility-gated to the
  corresponding guest cycle (see :mod:`repro.vehicle.controllers`);
* idle time (the guest parked on WFI) fast-forwards in O(1) with the
  exact semantics of the reference sleep loop (one poll per cycle).

:meth:`raise_irq` *verifies* the contract: the delivery latency must
exceed the core's quantum overrun (bounded by one instruction / one fused
loop iteration), and a violation raises :class:`CosimDeterminismError`
instead of silently producing quantum-dependent runs.
"""

from __future__ import annotations

from repro.core.cpu import HALT_ADDRESS

#: default interrupt delivery latency, in guest cycles: must exceed the
#: worst quantum overrun (one instruction, or one fused loop iteration of
#: guest firmware), which the raise-time guard enforces loudly
IRQ_DELIVERY_CYCLES = 256

#: default CAN transmit-path delay, in bus microseconds: a doorbell's
#: frame enters arbitration this long after the store's guest time, which
#: must exceed the co-simulation quantum (the host clock runs at most one
#: quantum ahead of the replayed guest time)
TX_DELAY_US = 500


class CosimDeterminismError(RuntimeError):
    """A bus event would land in a guest core's architectural past."""


class Ecu:
    """One vehicle processor node: a machine plus clock-domain glue."""

    def __init__(self, name: str, machine, entry: str = "main",
                 clock_mhz: int = 80,
                 irq_latency_cycles: int = IRQ_DELIVERY_CYCLES,
                 tx_delay_us: int = TX_DELAY_US,
                 max_instructions_per_advance: int = 50_000_000) -> None:
        if clock_mhz <= 0:
            raise ValueError("clock_mhz must be a positive integer")
        self.name = name
        self.machine = machine
        self.cpu = machine.cpu
        self.mhz = int(clock_mhz)
        self.irq_latency = int(irq_latency_cycles)
        self.tx_delay_us = int(tx_delay_us)
        self.max_instructions = max_instructions_per_advance
        self.controller = getattr(self.cpu, "nvic", None)
        if self.controller is None:
            self.controller = self.cpu.vic
        program = self.cpu.program
        if entry not in program.symbols:
            raise KeyError(f"no entry symbol {entry!r} in {name}'s firmware")
        self.cpu.regs.sp = machine.stack_top
        self.cpu.regs.lr = HALT_ADDRESS
        self.cpu.regs.pc = program.symbols[entry]
        self.devices: list = []
        #: open TX window: when not None, doorbell submissions buffer
        #: here as (at_us, action) instead of going to the scheduler -
        #: the parallel pump's merge step drains them at the barrier
        self.tx_buffer: list | None = None

    # ------------------------------------------------------------------
    # clock-domain conversion (exact integer arithmetic)
    # ------------------------------------------------------------------
    def cycle_of_us(self, us: int) -> int:
        """The guest cycle corresponding to bus time ``us``."""
        return int(us) * self.mhz

    def us_of_cycle(self, cycle: int) -> int:
        """Bus time at which guest cycle ``cycle`` completes (ceiling)."""
        return -(-int(cycle) // self.mhz)

    # ------------------------------------------------------------------
    def attach_device(self, device) -> None:
        """Map an MMIO device into the ECU's address space."""
        device.ecu = self
        self.machine.bus.attach(device)
        self.devices.append(device)

    def raise_irq(self, number: int, handler: int, at_us: int,
                  priority: int = 0, nmi: bool = False) -> None:
        """Assert an interrupt for a bus event at time ``at_us``.

        The assert cycle is ``at_us`` converted to this ECU's clock plus
        the fixed delivery latency - a pure function of the bus time, so
        service timing cannot depend on quantum placement.  Raises
        :class:`CosimDeterminismError` if the core has already executed
        past that cycle (quantum overrun exceeded the delivery latency:
        enlarge ``irq_latency_cycles`` or shrink the firmware's fused
        loops, do not ignore it).
        """
        assert_cycle = self.cycle_of_us(at_us) + self.irq_latency
        if assert_cycle < self.cpu.cycles:
            raise CosimDeterminismError(
                f"{self.name}: interrupt for bus time {at_us}us would "
                f"assert at cycle {assert_cycle}, but the core has "
                f"already reached cycle {self.cpu.cycles}; increase "
                f"irq_latency_cycles above the quantum overrun")
        self.controller.raise_irq(number, handler=handler,
                                  at_cycle=assert_cycle, priority=priority,
                                  nmi=nmi)

    # ------------------------------------------------------------------
    # parallel TX windows
    # ------------------------------------------------------------------
    def begin_tx_window(self) -> None:
        """Open a buffered TX window for one parallel quantum.

        While the window is open, the ECU's controllers park outbound bus
        traffic in :attr:`tx_buffer` instead of touching the (thread-
        unsafe) scheduler heap.  The scheduler itself is the *only* piece
        of shared state a guest advance can mutate, so with windows open
        every ECU's quantum is free of cross-ECU writes and can run on a
        worker thread.
        """
        self.tx_buffer = []

    def end_tx_window(self, scheduler) -> None:
        """Close the window and merge its traffic into the scheduler.

        Called at the barrier, on the main thread, in the vehicle's fixed
        ECU order: each buffered doorbell reaches ``scheduler.at`` in
        exactly the order the serial pump would have produced (ECUs in
        list order, each in its own program order), so event sequence
        numbers - and therefore every downstream tie-break - are
        byte-identical to the serial run.
        """
        buffered, self.tx_buffer = self.tx_buffer, None
        for at_us, action in buffered:
            scheduler.at(at_us, action)

    # ------------------------------------------------------------------
    # bounded advancement
    # ------------------------------------------------------------------
    def advance_to_us(self, us: int) -> None:
        self.advance_to_cycle(self.cycle_of_us(us))

    def advance_to_cycle(self, target: int) -> None:
        """Run the guest until its cycle counter reaches ``target``.

        Busy execution goes through the engine's cycle-coupled entry
        (fused trace superblocks included); WFI idle time fast-forwards
        in O(1) per advance with reference sleep-loop semantics.
        """
        cpu = self.cpu
        while not cpu.halted and cpu.cycles < target:
            if cpu.sleeping:
                self._sleep_until(target)
                continue
            cpu.run_until_cycle(target,
                                max_instructions=self.max_instructions)

    def advance_for_event(self, at_us: int,
                          settle_instructions: int = 1_000_000) -> int:
        """Advance the guest to the exact architectural point for a
        direct state mutation (e.g. a soft-error flip) at bus time
        ``at_us``, and return the cycle the mutation lands at.

        An IRQ needs no such care - the engine delivers it cycle-exactly
        wherever the host paused - but a raw memory write is only
        quantum- and engine-invariant if it lands at a *unique*
        architectural point.  Busy execution stops at engine-dependent
        boundaries (a fused loop iteration may overrun where the
        reference tier would pause), so after advancing to the event
        cycle we *settle*: run until the guest parks on WFI (or halts).
        No engine tier can overrun past a WFI, and cycle accounting is
        bit-identical across tiers, so every tier reaches the same sleep
        point - the mutation is then a pure function of the instruction
        stream.  Raises :class:`CosimDeterminismError` if the core has
        already executed past the event cycle, and ``RuntimeError`` if
        the firmware never sleeps within ``settle_instructions``.
        """
        target = self.cycle_of_us(at_us) + self.irq_latency
        cpu = self.cpu
        if target < cpu.cycles:
            raise CosimDeterminismError(
                f"{self.name}: state mutation for bus time {at_us}us would "
                f"land at cycle {target}, but the core has already reached "
                f"cycle {cpu.cycles}")
        self.advance_to_cycle(target)
        executed = cpu.instructions_executed
        while not cpu.halted and not cpu.sleeping:
            if cpu.instructions_executed - executed > settle_instructions:
                raise RuntimeError(
                    f"{self.name}: firmware never reached WFI within "
                    f"{settle_instructions} instructions of the event at "
                    f"{at_us}us; cannot place a deterministic mutation")
            cpu.run_until_cycle(cpu.cycles + self.mhz * 1_000,
                                max_instructions=self.max_instructions)
        return cpu.cycles

    def _sleep_until(self, target: int) -> None:
        """Fast-forward WFI sleep: the reference loop charges one cycle
        per poll, and below the earliest eligible assert every poll is
        provably a no-op - so jump straight to the wake-up (or the
        target) and poll once, which is bit-identical to stepping."""
        cpu = self.cpu
        masked = not cpu.interrupts_enabled
        eligible = [request.assert_cycle
                    for request in self.controller.queue
                    if request.nmi or not masked]
        wake = min(eligible, default=None)
        if wake is None:
            cpu.cycles = target
            return
        wake = max(wake, cpu.cycles + 1)
        if wake > target:
            cpu.cycles = target
            return
        cpu.cycles = wake
        cpu.check_interrupts()
        # if the poll had no effect (e.g. priority-blocked on the NVIC)
        # the loop in advance_to_cycle retries from one cycle later,
        # degrading gracefully to the reference one-poll-per-cycle pace

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def fused_block_count(self) -> int:
        """How many superblock entries have been fused to generated code
        (non-zero proves the guest ran on the trace engine's fast tier)."""
        return sum(1 for entry in self.cpu._sb_blocks.values()
                   if entry[3] is not None)

    def stats(self) -> dict:
        cpu = self.cpu
        return {
            "name": self.name,
            "core": cpu.name,
            "mhz": self.mhz,
            "cycles": cpu.cycles,
            "instructions": cpu.instructions_executed,
            "irqs_serviced": self.controller.stats.serviced,
            "fused_blocks": self.fused_block_count(),
        }
